package verify

import (
	"fmt"
	"math"

	"matchsim/internal/ce"
	"matchsim/internal/stats"
	"matchsim/internal/stochmat"
	"matchsim/internal/xrand"
)

// CheckPermutation reports whether m is a valid permutation of [0, len(m)):
// every resource used exactly once. This is the sampler postcondition —
// GenPerm (Fig. 4) must emit permutations whatever the matrix looks like.
func CheckPermutation(m []int) error {
	n := len(m)
	seen := make([]bool, n)
	for t, s := range m {
		if s < 0 || s >= n {
			return fmt.Errorf("verify: mapping[%d] = %d outside [0,%d)", t, s, n)
		}
		if seen[s] {
			return fmt.Errorf("verify: resource %d assigned twice", s)
		}
		seen[s] = true
	}
	return nil
}

// CheckRowStochastic reports whether every row of p is a probability
// distribution: entries finite, non-negative, rows summing to 1 within
// tol. stochmat.Update (SetRow + Smooth) must preserve this after every
// CE iteration.
func CheckRowStochastic(p *stochmat.Matrix, tol float64) error {
	if p == nil {
		return fmt.Errorf("verify: nil matrix")
	}
	if err := p.Validate(tol); err != nil {
		return fmt.Errorf("verify: matrix not row-stochastic: %w", err)
	}
	return nil
}

// CheckAliasRow draws `draws` samples from row `row` of an alias table
// built over m and runs a chi-square goodness-of-fit test against the
// matrix row itself. It returns an error when the test rejects at
// significance alpha (small alpha = lenient). Cells with expected count
// below 5 are pooled into their neighbour so the chi-square approximation
// holds on spiky rows.
func CheckAliasRow(m *stochmat.Matrix, row, draws int, rng *xrand.RNG, alpha float64) error {
	at := stochmat.NewAliasTable(m)
	cols := m.Cols()
	counts := make([]int, cols)
	for i := 0; i < draws; i++ {
		c := at.Sample(row, rng)
		if c < 0 || c >= cols {
			return fmt.Errorf("verify: alias sample %d outside [0,%d)", c, cols)
		}
		counts[c]++
	}
	// Pool cells left-to-right until each pooled cell's expectation >= 5.
	var (
		chi2   float64
		cells  int
		accExp float64
		accObs float64
	)
	rowP := m.Row(row)
	for c := 0; c < cols; c++ {
		accExp += rowP[c] * float64(draws)
		accObs += float64(counts[c])
		if accExp >= 5 || c == cols-1 {
			if accExp > 0 {
				d := accObs - accExp
				chi2 += d * d / accExp
				cells++
			} else if accObs > 0 {
				return fmt.Errorf("verify: alias row %d emitted %v draws for zero-probability cells", row, accObs)
			}
			accExp, accObs = 0, 0
		}
	}
	if cells < 2 {
		return nil // degenerate row: a single support point, nothing to test
	}
	p := stats.ChiSquareSurvival(chi2, cells-1)
	if p < alpha {
		return fmt.Errorf("verify: alias row %d fails chi-square: chi2=%.4g df=%d p=%.4g < alpha=%.4g",
			row, chi2, cells-1, p, alpha)
	}
	return nil
}

// CheckEliteSelection verifies ce.SelectElite's postcondition on a
// freshly selected order: order is a permutation of [0, len(scores)), its
// first k entries are sorted in the improving direction with ascending-
// index tie-breaks, and gamma = scores[order[k-1]] bounds every non-elite
// score — i.e. elite selection never lets a sample better than gamma
// escape the elite set.
func CheckEliteSelection(order []int, scores []float64, k int, minimize bool) error {
	n := len(scores)
	if len(order) != n {
		return fmt.Errorf("verify: order length %d != %d scores", len(order), n)
	}
	if err := CheckPermutation(order); err != nil {
		return fmt.Errorf("verify: order is not a permutation: %w", err)
	}
	if k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	better := func(a, b int) bool {
		sa, sb := scores[a], scores[b]
		if sa != sb {
			if minimize {
				return sa < sb
			}
			return sa > sb
		}
		return a < b
	}
	for i := 1; i < k; i++ {
		if better(order[i], order[i-1]) {
			return fmt.Errorf("verify: elite prefix unsorted at %d: sample %d (%.6g) after %d (%.6g)",
				i, order[i], scores[order[i]], order[i-1], scores[order[i-1]])
		}
	}
	gammaIdx := order[k-1]
	for _, idx := range order[k:] {
		if better(idx, gammaIdx) {
			return fmt.Errorf("verify: non-elite sample %d (%.6g) beats gamma sample %d (%.6g)",
				idx, scores[idx], gammaIdx, scores[gammaIdx])
		}
	}
	return nil
}

// CheckHistory verifies the per-iteration search invariants of a CE run's
// trajectory: in the improving direction Best_k <= Gamma_k <= Worst_k
// (elite selection puts gamma at the rho-quantile, never past the
// extremes), BestSoFar_k is monotone and never worse than Best_k, the
// elite is non-empty and within the draw count. Raw gamma_k itself may
// move against the improving direction between iterations (the sample
// set is redrawn each time — see the note in internal/ce/ce.go), so the
// monotone quantity under elite selection is the incumbent BestSoFar.
func CheckHistory(history []ce.IterStats, minimize bool) error {
	worseThan := func(a, b float64) bool {
		if minimize {
			return a > b
		}
		return a < b
	}
	prevBestSoFar := math.NaN()
	for i, it := range history {
		for name, v := range map[string]float64{
			"gamma": it.Gamma, "best": it.Best, "best_so_far": it.BestSoFar,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("verify: iteration %d has non-finite %s (%v)", i, name, v)
			}
		}
		if it.Draws <= 0 {
			return fmt.Errorf("verify: iteration %d drew %d samples", i, it.Draws)
		}
		if it.EliteCount < 1 || it.EliteCount > it.Draws {
			return fmt.Errorf("verify: iteration %d elite count %d outside [1,%d]", i, it.EliteCount, it.Draws)
		}
		if worseThan(it.Best, it.Gamma) {
			return fmt.Errorf("verify: iteration %d best %.6g worse than gamma %.6g", i, it.Best, it.Gamma)
		}
		// Worst is +/-Inf when every non-elite draw was pruned; the bound
		// only applies when it was actually measured.
		if !math.IsInf(it.Worst, 0) && worseThan(it.Gamma, it.Worst) {
			return fmt.Errorf("verify: iteration %d gamma %.6g worse than worst %.6g", i, it.Gamma, it.Worst)
		}
		if worseThan(it.BestSoFar, it.Best) {
			return fmt.Errorf("verify: iteration %d best-so-far %.6g worse than iteration best %.6g",
				i, it.BestSoFar, it.Best)
		}
		if i > 0 && worseThan(it.BestSoFar, prevBestSoFar) {
			return fmt.Errorf("verify: best-so-far regressed at iteration %d: %.6g after %.6g",
				i, it.BestSoFar, prevBestSoFar)
		}
		prevBestSoFar = it.BestSoFar
		if it.Pruned < 0 || it.Pruned > it.Draws {
			return fmt.Errorf("verify: iteration %d pruned %d of %d draws", i, it.Pruned, it.Draws)
		}
		if it.Rescored < 0 || it.Rescored > it.Pruned {
			return fmt.Errorf("verify: iteration %d rescored %d > pruned %d", i, it.Rescored, it.Pruned)
		}
	}
	return nil
}
