package verify

import (
	"fmt"

	"matchsim/internal/graph"
	"matchsim/internal/xrand"
)

// Relabel returns the instance with task indices renamed by taskPerm and
// resource indices by resPerm (old index i becomes perm[i]). Renaming is
// a pure change of coordinates: for any mapping m of the original
// instance, ConjugateMapping(m, taskPerm, resPerm) has exactly the same
// per-resource loads (up to the same renaming) and the same Exec. The
// platform must be fully linked (its closed link matrix is copied as
// direct links).
func Relabel(tig *graph.TIG, platform *graph.ResourceGraph, taskPerm, resPerm []int) (*graph.TIG, *graph.ResourceGraph, error) {
	n, r := tig.NumTasks(), platform.NumResources()
	if err := CheckPermutation(taskPerm); err != nil || len(taskPerm) != n {
		return nil, nil, fmt.Errorf("verify: task permutation invalid for %d tasks: %v", n, err)
	}
	if err := CheckPermutation(resPerm); err != nil || len(resPerm) != r {
		return nil, nil, fmt.Errorf("verify: resource permutation invalid for %d resources: %v", r, err)
	}
	if !platform.FullyLinked() {
		return nil, nil, fmt.Errorf("verify: relabel requires a fully linked platform")
	}

	nt := graph.NewTIG(n)
	for t, w := range tig.Weights {
		nt.Weights[taskPerm[t]] = w
	}
	for _, e := range tig.Edges() {
		if err := nt.AddEdge(taskPerm[e.U], taskPerm[e.V], e.Weight); err != nil {
			return nil, nil, fmt.Errorf("verify: relabel edge (%d,%d): %w", e.U, e.V, err)
		}
	}

	np := graph.NewResourceGraph(r)
	for s, c := range platform.Costs {
		np.Costs[resPerm[s]] = c
	}
	for s := 0; s < r; s++ {
		for b := s + 1; b < r; b++ {
			if err := np.AddLink(resPerm[s], resPerm[b], platform.LinkCost(s, b)); err != nil {
				return nil, nil, fmt.Errorf("verify: relabel link (%d,%d): %w", s, b, err)
			}
		}
	}
	return nt, np, nil
}

// ConjugateMapping renames a mapping of the original instance into the
// coordinates of the relabeled one: task taskPerm[t] runs on resource
// resPerm[m[t]].
func ConjugateMapping(m, taskPerm, resPerm []int) []int {
	out := make([]int, len(m))
	for t, s := range m {
		out[taskPerm[t]] = resPerm[s]
	}
	return out
}

// ScaleWeights returns a copy of tig with every task weight W^t and every
// edge weight C^{i,j} multiplied by alpha > 0. Eq. (1) is linear in W and
// C, so Exec_s and Exec of any mapping scale by exactly alpha (bit-exact
// when alpha is a power of two).
func ScaleWeights(tig *graph.TIG, alpha float64) (*graph.TIG, error) {
	if !(alpha > 0) {
		return nil, fmt.Errorf("verify: scale factor %v must be positive", alpha)
	}
	nt := graph.NewTIG(tig.NumTasks())
	for t, w := range tig.Weights {
		nt.Weights[t] = w * alpha
	}
	for _, e := range tig.Edges() {
		if err := nt.AddEdge(e.U, e.V, e.Weight*alpha); err != nil {
			return nil, fmt.Errorf("verify: scale edge (%d,%d): %w", e.U, e.V, err)
		}
	}
	return nt, nil
}

// AddZeroEdges returns a copy of tig with up to k zero-weight edges added
// between rng-chosen currently-non-adjacent task pairs. A zero-weight
// edge contributes C^{i,j} * c_{a,b} = 0 to both endpoints, so every
// mapping's loads — and Exec — are bit-identical to the original's. The
// number of edges actually added is returned (fewer than k when the
// graph is near-complete).
func AddZeroEdges(tig *graph.TIG, k int, rng *xrand.RNG) (*graph.TIG, int, error) {
	nt := tig.Clone()
	n := nt.NumTasks()
	var free [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !nt.HasEdge(u, v) {
				free = append(free, [2]int{u, v})
			}
		}
	}
	for i := len(free) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		free[i], free[j] = free[j], free[i]
	}
	if k > len(free) {
		k = len(free)
	}
	for _, p := range free[:k] {
		if err := nt.AddEdge(p[0], p[1], 0); err != nil {
			return nil, 0, fmt.Errorf("verify: zero edge (%d,%d): %w", p[0], p[1], err)
		}
	}
	return nt, k, nil
}
