package verify

import (
	"testing"

	"matchsim/internal/core"
	"matchsim/internal/cost"
	"matchsim/internal/gen"
	"matchsim/internal/graph"
	"matchsim/internal/stochmat"
	"matchsim/internal/xrand"
)

// TestCheckContractionOnLadder coarsens paper instances level by level
// and runs the independent contraction checker at every step.
func TestCheckContractionOnLadder(t *testing.T) {
	for _, seed := range []uint64{3, 8, 15} {
		inst, err := gen.PaperInstance(seed, 64, gen.DefaultPaperConfig())
		if err != nil {
			t.Fatal(err)
		}
		cur := inst.TIG
		for cur.N() > 8 {
			pairs := graph.HeavyEdgeMatching(cur.Undirected)
			if len(pairs) == 0 {
				break
			}
			c, err := graph.ContractionFromPairs(cur.N(), pairs)
			if err != nil {
				t.Fatal(err)
			}
			next, err := graph.ContractTIG(cur, c)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckContraction(cur, next, c); err != nil {
				t.Fatalf("seed %d at n=%d: %v", seed, cur.N(), err)
			}
			cur = next
		}
	}
}

// TestCheckContractionCatchesCorruption: the checker must reject a
// coarse TIG whose weights were tampered with.
func TestCheckContractionCatchesCorruption(t *testing.T) {
	tig := graph.NewTIG(4)
	for i := range tig.Weights {
		tig.Weights[i] = float64(i + 1)
	}
	tig.MustAddEdge(0, 1, 2)
	tig.MustAddEdge(2, 3, 3)
	tig.MustAddEdge(0, 2, 5)
	c, err := graph.ContractionFromPairs(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := graph.ContractTIG(tig, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckContraction(tig, coarse, c); err != nil {
		t.Fatalf("valid contraction rejected: %v", err)
	}
	coarse.Weights[0]++
	if err := CheckContraction(tig, coarse, c); err == nil {
		t.Fatalf("vertex-weight corruption not detected")
	}
	coarse.Weights[0]--
	coarse.Edges()[0].Weight++
	if err := CheckContraction(tig, coarse, c); err == nil {
		t.Fatalf("edge-weight corruption not detected")
	}
}

// TestCheckProjectionOnSolver runs a multilevel solve and feeds each
// level's reported stats through the projection checker; the refined
// exec may never exceed what a worsening refinement would produce.
func TestCheckProjectionOnSolver(t *testing.T) {
	inst, err := gen.PaperInstance(42, 64, gen.DefaultPaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	eval, err := cost.NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(eval, core.Options{Seed: 7, Workers: 1, MaxIterations: 150,
		Multilevel: &core.MultilevelOptions{MinCoarse: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPermutation(res.Mapping); err != nil {
		t.Fatal(err)
	}
	// Cross-level monotonicity is not guaranteed (levels are different
	// instances), but every level's Exec must be positive and the finest
	// must equal the reported result.
	for i, lv := range res.Levels {
		if lv.Exec <= 0 {
			t.Fatalf("level %d has non-positive exec %v", i, lv.Exec)
		}
	}
	if res.Levels[0].Exec != res.Exec {
		t.Fatalf("finest level exec %v != result %v", res.Levels[0].Exec, res.Exec)
	}
}

// TestCheckProjectionBasics exercises the projection checker directly.
func TestCheckProjectionBasics(t *testing.T) {
	tmap := []int{0, 0, 1, 1}
	rmap := []int{0, 1, 1, 0}
	good := []int{0, 1, 2, 3}
	if err := CheckProjection(tmap, rmap, good, 100, 90, 1e-9); err != nil {
		t.Fatalf("valid projection rejected: %v", err)
	}
	if err := CheckProjection(tmap, rmap, good, 90, 100, 1e-9); err == nil {
		t.Fatalf("worsening refinement accepted")
	}
	if err := CheckProjection(tmap, rmap, []int{0, 0, 2, 3}, 100, 90, 1e-9); err == nil {
		t.Fatalf("non-permutation accepted")
	}
	if err := CheckProjection(tmap[:3], rmap, good, 100, 90, 1e-9); err == nil {
		t.Fatalf("mismatched map sizes accepted")
	}
}

// TestCheckSparseDenseUpdateClean: the production kernel passes its own
// differential check across shapes and truncation strengths.
func TestCheckSparseDenseUpdateClean(t *testing.T) {
	for _, n := range []int{8, 24, 64} {
		for _, eps := range []float64{0, 1e-4, 1e-2} {
			if err := CheckSparseDenseUpdate(uint64(n)+7, n, 200, 0.3, eps); err != nil {
				t.Fatalf("n=%d eps=%g: %v", n, eps, err)
			}
		}
	}
}

// TestCheckSparseSamplingClean: compacted sampling matches full-width
// sampling on strictly positive rows and respects supports on sparse
// ones.
func TestCheckSparseSamplingClean(t *testing.T) {
	rng := xrand.New(31)
	m := stochmat.NewUniform(12, 12)
	row := make([]float64, 12)
	for i := 0; i < 6; i++ { // sparsify half the rows
		for j := range row {
			row[j] = 0
		}
		for _, c := range rng.SampleWithoutReplacement(12, 3) {
			row[c] = float64(rng.IntRange(1, 9))
		}
		if err := m.SetRow(i*2, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := CheckSparseSampling(m, 77, 500); err != nil {
		t.Fatal(err)
	}
}
