package verify

import (
	"fmt"

	"matchsim/internal/stochmat"
	"matchsim/internal/xrand"
)

// CheckSparseDenseUpdate runs `rounds` random elite-count updates through
// two matrices — one with support tracking enabled (the O(nnz) sparse-row
// path), one without (the dense evaluation of the same kernel) — and
// demands bit identity after every round: row values, change flags and
// row versions. On integer-grained counts the two evaluation orders visit
// exactly the same nonzero terms (zeros contribute exactly 0.0), so any
// divergence is a real bug in the support bookkeeping.
func CheckSparseDenseUpdate(seed uint64, n, rounds int, zeta, eps float64) error {
	if n < 2 || rounds < 1 {
		return fmt.Errorf("verify: bad sparse differential shape n=%d rounds=%d", n, rounds)
	}
	rng := xrand.New(seed)
	sparse := stochmat.NewUniform(n, n)
	sparse.TrackSupport(n)
	dense := stochmat.NewUniform(n, n)
	counts := make([]float64, n)
	for round := 0; round < rounds; round++ {
		i := rng.Intn(n)
		for j := range counts {
			counts[j] = 0
		}
		var sup []int32
		for _, c := range rng.SampleWithoutReplacement(n, 1+rng.Intn(n/2)) {
			counts[c] = float64(rng.IntRange(1, 16))
		}
		for j, c := range counts {
			if c != 0 {
				sup = append(sup, int32(j))
			}
		}
		cs, errS := sparse.EliteUpdateRow(i, counts, sup, zeta, eps)
		cd, errD := dense.EliteUpdateRow(i, counts, nil, zeta, eps)
		if errS != nil || errD != nil {
			return fmt.Errorf("verify: sparse differential round %d: %v / %v", round, errS, errD)
		}
		if cs != cd {
			return fmt.Errorf("verify: round %d: change flags diverge (sparse %v, dense %v)", round, cs, cd)
		}
		sr, dr := sparse.Row(i), dense.Row(i)
		for j := range sr {
			if sr[j] != dr[j] {
				return fmt.Errorf("verify: round %d row %d col %d: sparse %v != dense %v",
					round, i, j, sr[j], dr[j])
			}
		}
		if sparse.RowVersion(i) != dense.RowVersion(i) {
			return fmt.Errorf("verify: round %d row %d: versions diverge (%d vs %d)",
				round, i, sparse.RowVersion(i), dense.RowVersion(i))
		}
	}
	return nil
}

// CheckSparseSampling verifies that the support-compacted alias table
// built from a tracked matrix draws the same stream as the full-width
// table built from an untracked copy of the same rows. Strictly positive
// rows compact to the identity layout, so the streams must be
// bit-identical draw by draw; rows with exact zeros never emit a
// zero-weight column from either table.
func CheckSparseSampling(m *stochmat.Matrix, seed uint64, draws int) error {
	if m == nil {
		return fmt.Errorf("verify: nil matrix")
	}
	tracked := m.Clone()
	tracked.TrackSupport(tracked.Cols())
	plain := m.Clone()
	atT := stochmat.NewAliasTable(tracked)
	atP := stochmat.NewAliasTable(plain)
	rngT, rngP := xrand.New(seed), xrand.New(seed)
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		allPositive := true
		for _, v := range row {
			if v == 0 {
				allPositive = false
				break
			}
		}
		for d := 0; d < draws; d++ {
			ct, cp := atT.Sample(i, rngT), atP.Sample(i, rngP)
			if allPositive && ct != cp {
				return fmt.Errorf("verify: row %d draw %d: tracked %d != plain %d", i, d, ct, cp)
			}
			if row[ct] == 0 || row[cp] == 0 {
				return fmt.Errorf("verify: row %d draw %d: zero-weight column drawn (%d/%d)", i, d, ct, cp)
			}
		}
	}
	return nil
}
