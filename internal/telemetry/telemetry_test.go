package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs ever.")
	c.Inc()
	c.Add(2.5)
	g := r.Gauge("queue_depth", "Depth.")
	g.Set(7)
	g.Add(-3)
	r.GaugeFunc("cache_entries", "Entries.", func() float64 { return 42 })

	text := expose(t, r)
	for _, want := range []string{
		"# HELP jobs_total Jobs ever.\n# TYPE jobs_total counter\njobs_total 3.5\n",
		"# HELP queue_depth Depth.\n# TYPE queue_depth gauge\nqueue_depth 4\n",
		"cache_entries 42\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Families sort by name: cache_entries < jobs_total < queue_depth.
	if !(strings.Index(text, "cache_entries") < strings.Index(text, "jobs_total") &&
		strings.Index(text, "jobs_total") < strings.Index(text, "queue_depth")) {
		t.Errorf("families not sorted by name:\n%s", text)
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "Requests.", "route", "code")
	v.With("GET /v1/jobs/{id}", "200").Add(3)
	v.With(`weird"route\with`+"\nnewline", "500").Inc()

	text := expose(t, r)
	if want := `http_requests_total{route="GET /v1/jobs/{id}",code="200"} 3`; !strings.Contains(text, want) {
		t.Errorf("missing %q in:\n%s", want, text)
	}
	if want := `http_requests_total{route="weird\"route\\with\nnewline",code="500"} 1`; !strings.Contains(text, want) {
		t.Errorf("label escaping wrong, want %q in:\n%s", want, text)
	}
	// Same label values must resolve to the same child.
	v.With("GET /v1/jobs/{id}", "200").Inc()
	if got := v.With("GET /v1/jobs/{id}", "200").Value(); got != 4 {
		t.Errorf("child identity broken: got %v, want 4", got)
	}
}

func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}

	text := expose(t, r)
	wants := []string{
		`latency_seconds_bucket{le="0.01"} 2`, // 0.005 and the boundary 0.01 (le is inclusive)
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 6`,
		`latency_seconds_count 6`,
	}
	for _, want := range wants {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+2+100; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum %v, want %v", got, want)
	}
	if h.Count() != 6 {
		t.Errorf("count %d, want 6", h.Count())
	}
	// _bucket lines must be cumulative and end at _count.
	if !strings.Contains(text, "latency_seconds_sum 102.565") {
		t.Errorf("missing sum line:\n%s", text)
	}
}

func TestHistogramVecSharedBuckets(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("req_seconds", "Per-route latency.", ExpBuckets(0.001, 10, 3), "route")
	hv.With("a").Observe(0.0005)
	hv.With("b").Observe(5)
	text := expose(t, r)
	for _, want := range []string{
		`req_seconds_bucket{route="a",le="0.001"} 1`,
		`req_seconds_bucket{route="b",le="0.1"} 0`,
		`req_seconds_bucket{route="b",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("x_total", "X again.")
}

// TestConcurrentUpdates hammers every metric type from many goroutines;
// run under -race this is the registry's data-race regression test, and
// the final values check that no increments are lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h_seconds", "H.", ExpBuckets(1, 2, 8))
	cv := r.CounterVec("cv_total", "CV.", "worker")

	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 300))
				cv.With(lbl).Inc()
				if i%100 == 0 {
					var sb strings.Builder
					_ = r.WritePrometheus(&sb) // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter lost updates: %v, want %v", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Errorf("gauge lost updates: %v, want %v", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram lost observations: %d, want %d", got, goroutines*perG)
	}
	total := 0.0
	for _, l := range []string{"a", "b", "c", "d"} {
		total += cv.With(l).Value()
	}
	if total != goroutines*perG {
		t.Errorf("counter vec lost updates: %v, want %v", total, goroutines*perG)
	}
}
