package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.StartSpan(context.Background(), "x")
	if span != nil {
		t.Fatal("nil tracer returned a span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer polluted the context")
	}
	// Every span method must be callable on nil.
	span.SetAttr("k", "v")
	span.SetAttrInt("n", 1)
	span.SetStatus("ok")
	span.Event("e", "a", "b")
	span.End()
	if span.TraceID() != "" || span.SpanID() != "" || span.Traceparent() != "" {
		t.Fatal("nil span returned non-empty identity")
	}
	if span.Child("c") != nil {
		t.Fatal("nil span produced a child")
	}
	if tr.OpenSpans() != 0 || tr.Trace("abc") != nil || tr.Traces(10) != nil {
		t.Fatal("nil tracer reported state")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	traceID, spanID := NewTraceID(), NewSpanID()
	if len(traceID) != 32 || len(spanID) != 16 {
		t.Fatalf("id widths: trace %d, span %d", len(traceID), len(spanID))
	}
	h := FormatTraceparent(traceID, spanID)
	gotTrace, gotSpan, ok := ParseTraceparent(h)
	if !ok || gotTrace != traceID || gotSpan != spanID {
		t.Fatalf("round trip failed: %q -> (%q, %q, %v)", h, gotTrace, gotSpan, ok)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01", // wrong widths
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // all-zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // all-zero span
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // reserved version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 with suffix
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",          // missing flags
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	// A future version may carry a dash-separated suffix.
	if _, _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future"); !ok {
		t.Error("future-version traceparent with suffix rejected")
	}
}

func TestSpanParenting(t *testing.T) {
	tr := NewTracer(TracerOptions{Node: "n1", Capacity: 16})
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	grand := child.Child("grand")

	if root.TraceID() == "" {
		t.Fatal("root has no trace ID")
	}
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatal("children did not join the root trace")
	}
	grand.End()
	child.End()
	root.SetStatus("ok")
	root.End()

	spans := tr.Trace(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("Trace returned %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range spans {
		byName[sd.Name] = sd
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Error("child not parented under root")
	}
	if byName["grand"].ParentID != byName["child"].SpanID {
		t.Error("grandchild not parented under child")
	}
	if byName["root"].Status != "ok" || byName["root"].Node != "n1" {
		t.Errorf("root record wrong: %+v", byName["root"])
	}
	if tr.OpenSpans() != 0 {
		t.Errorf("open spans = %d after ending all", tr.OpenSpans())
	}
}

func TestStartSpanRemoteContinuesTrace(t *testing.T) {
	sender := NewTracer(TracerOptions{Node: "a", Capacity: 8})
	receiver := NewTracer(TracerOptions{Node: "b", Capacity: 8})
	_, out := sender.StartSpan(context.Background(), "client")
	_, in := receiver.StartSpanRemote(context.Background(), "server", out.Traceparent())
	if in.TraceID() != out.TraceID() {
		t.Fatalf("remote span trace %q, want %q", in.TraceID(), out.TraceID())
	}
	in.End()
	sd := receiver.Trace(out.TraceID())
	if len(sd) != 1 || sd[0].ParentID != out.SpanID() {
		t.Fatalf("remote span not parented under sender: %+v", sd)
	}
	out.End()

	// Malformed traceparent falls back to a fresh root.
	_, fresh := receiver.StartSpanRemote(context.Background(), "server", "garbage")
	if fresh.TraceID() == out.TraceID() || fresh.TraceID() == "" {
		t.Fatal("malformed traceparent did not start a fresh trace")
	}
	fresh.End()
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 4})
	var last *Span
	for i := 0; i < 10; i++ {
		_, s := tr.StartSpan(context.Background(), "s")
		s.End()
		last = s
	}
	sum := tr.Traces(0)
	total := 0
	for _, g := range sum {
		total += g.Spans
	}
	if total != 4 {
		t.Fatalf("ring retained %d spans, want 4", total)
	}
	if got := tr.Trace(last.TraceID()); len(got) != 1 {
		t.Fatalf("most recent span evicted: %d", len(got))
	}
}

func TestEventCapAndDropped(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 4, MaxEventsPerSpan: 3})
	_, s := tr.StartSpan(context.Background(), "s")
	for i := 0; i < 5; i++ {
		s.Event("iter", "i", "x")
	}
	s.End()
	sd := tr.Trace(s.TraceID())[0]
	if len(sd.Events) != 3 || sd.DroppedEvents != 2 {
		t.Fatalf("events=%d dropped=%d, want 3/2", len(sd.Events), sd.DroppedEvents)
	}
	if sd.Events[0].Attrs["i"] != "x" {
		t.Fatalf("event attrs lost: %+v", sd.Events[0])
	}
	// Mutations after End are no-ops, and End is idempotent.
	s.Event("late")
	s.SetAttr("late", "true")
	s.End()
	if tr.Finished() != 1 {
		t.Fatalf("double End counted twice: finished=%d", tr.Finished())
	}
}

func TestTracesSummaries(t *testing.T) {
	tr := NewTracer(TracerOptions{Node: "n", Capacity: 64})
	for i := 0; i < 3; i++ {
		ctx, root := tr.StartSpan(context.Background(), "job")
		_, c := tr.StartSpan(ctx, "solve")
		c.End()
		root.End()
	}
	sum := tr.Traces(2)
	if len(sum) != 2 {
		t.Fatalf("limit ignored: %d summaries", len(sum))
	}
	for _, g := range sum {
		if g.Root != "job" || g.Spans != 2 || g.DurationNs < 0 {
			t.Fatalf("bad summary: %+v", g)
		}
	}
}

func TestSpanLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	log := NewSpanLog(&buf)
	tr := NewTracer(TracerOptions{Node: "n", Capacity: 8, Log: log})
	_, s := tr.StartSpan(context.Background(), "op")
	s.SetAttrInt("k", 7)
	s.Event("e")
	s.End()
	if err := log.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("span log empty")
	}
	var sd SpanData
	if err := json.Unmarshal(sc.Bytes(), &sd); err != nil {
		t.Fatalf("span log line not JSON: %v", err)
	}
	if sd.Name != "op" || sd.Attrs["k"] != "7" || len(sd.Events) != 1 || sd.TraceID != s.TraceID() {
		t.Fatalf("span log record wrong: %+v", sd)
	}
}

// TestSpanConcurrency exercises the tracer from many goroutines; under
// -race it is the tracing layer's data-race regression test.
func TestSpanConcurrency(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 128})
	ctx, root := tr.StartSpan(context.Background(), "root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, s := tr.StartSpan(ctx, "work")
				s.Event("tick", "i", "v")
				root.Event("shared")
				s.End()
				tr.Trace(root.TraceID())
				tr.Traces(4)
			}
		}()
	}
	wg.Wait()
	root.End()
	if tr.OpenSpans() != 0 {
		t.Fatalf("span leak: %d open", tr.OpenSpans())
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "L.", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "aaaabbbbccccddddaaaabbbbccccdddd")
	h.Observe(0.07) // plain Observe must not disturb the exemplar
	h.ObserveExemplar(5, "")

	var plain, om strings.Builder
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "trace_id") || strings.Contains(plain.String(), "# EOF") {
		t.Errorf("default exposition leaked OpenMetrics syntax:\n%s", plain.String())
	}
	if want := `lat_seconds_bucket{le="0.1"} 2 # {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"} 0.05`; !strings.Contains(om.String(), want) {
		t.Errorf("OpenMetrics missing exemplar %q:\n%s", want, om.String())
	}
	// The empty-traceID observation landed in +Inf with no exemplar.
	if strings.Contains(om.String(), `le="+Inf"} 3 #`) {
		t.Errorf("empty trace ID produced an exemplar:\n%s", om.String())
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Errorf("OpenMetrics output missing EOF marker")
	}
}
