// Distributed tracing for the matchd service: a zero-dependency span
// implementation with W3C traceparent propagation. A Tracer hands out
// spans (trace ID / span ID / parent, string attributes, bounded events,
// monotonic timing), keeps the most recent finished spans in a ring
// buffer for the /v1/traces endpoints, and optionally mirrors every
// finished span to a JSONL log (same conventions as internal/trace:
// sticky error, flush per record).
//
// The tracing-off path is a nil *Tracer: StartSpan on a nil tracer
// returns a nil *Span, and every *Span method is nil-safe, so
// instrumented code calls span.Event(...) unconditionally and pays a
// single pointer test when tracing is disabled. Spans never touch the
// solver RNG or result path — a traced run is bit-identical to an
// untraced one.
package telemetry

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanEvent is one timestamped annotation inside a span. OffsetNs is
// measured monotonically from the span start.
type SpanEvent struct {
	Name     string            `json:"name"`
	OffsetNs int64             `json:"offset_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// SpanData is the immutable record of a finished span — the unit stored
// in the tracer ring, written to the span log and served by /v1/traces.
type SpanData struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// Node identifies the daemon that produced the span, so a cross-node
	// trace reads unambiguously after merging.
	Node       string            `json:"node,omitempty"`
	Start      time.Time         `json:"start"`
	DurationNs int64             `json:"duration_ns"`
	Status     string            `json:"status,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []SpanEvent       `json:"events,omitempty"`
	// DroppedEvents counts events discarded after the per-span cap.
	DroppedEvents int `json:"dropped_events,omitempty"`
}

// TraceSummary is one row of the trace listing (GET /v1/traces).
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Node       string    `json:"node,omitempty"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	Spans      int       `json:"spans"`
}

// TracerOptions configures NewTracer. Zero values take defaults.
type TracerOptions struct {
	// Node is stamped on every span (defaults to the process hostname).
	Node string
	// Capacity bounds the finished-span ring buffer (default 4096).
	Capacity int
	// MaxEventsPerSpan caps events per span; excess increments
	// DroppedEvents (default 512 — enough for one event per CE iteration
	// on long solves without unbounded growth).
	MaxEventsPerSpan int
	// Log, when non-nil, receives every finished span as one JSONL line.
	Log *SpanLog
}

// Tracer creates spans and retains the most recent finished ones. A nil
// *Tracer is the disabled tracer: it creates nil spans and costs nothing.
type Tracer struct {
	node      string
	capacity  int
	maxEvents int
	log       *SpanLog

	started  atomic.Int64
	finished atomic.Int64

	mu   sync.Mutex
	ring []SpanData // circular; len grows to capacity then wraps
	next int        // insertion index once len(ring) == capacity
}

// NewTracer returns a tracer with the given options.
func NewTracer(opts TracerOptions) *Tracer {
	node := opts.Node
	if node == "" {
		if h, err := os.Hostname(); err == nil {
			node = h
		}
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = 4096
	}
	maxEvents := opts.MaxEventsPerSpan
	if maxEvents <= 0 {
		maxEvents = 512
	}
	return &Tracer{node: node, capacity: capacity, maxEvents: maxEvents, log: opts.Log}
}

// Node returns the tracer's node identity ("" on a nil tracer).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Started returns the number of spans started ("" counters read 0 on a
// nil tracer).
func (t *Tracer) Started() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Finished returns the number of spans ended.
func (t *Tracer) Finished() int64 {
	if t == nil {
		return 0
	}
	return t.finished.Load()
}

// OpenSpans returns started minus finished — zero when every span was
// properly ended (the span-leak invariant checked by internal/verify).
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load() - t.finished.Load()
}

// Span is one in-flight operation. Methods are safe for concurrent use
// and nil-safe: a nil *Span (from a nil tracer) no-ops everywhere.
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	data  SpanData
	start time.Time // monotonic reference
	ended bool
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a span named name. If ctx carries a span, the new
// span joins its trace as a child; otherwise it roots a new trace. The
// returned context carries the new span. On a nil tracer both returns
// are pass-throughs (ctx, nil).
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var traceID, parentID string
	if p := SpanFromContext(ctx); p != nil {
		traceID, parentID = p.TraceID(), p.SpanID()
	}
	s := t.newSpan(name, traceID, parentID)
	return ContextWithSpan(ctx, s), s
}

// StartSpanRemote starts a span continuing the trace described by a W3C
// traceparent header value. An empty or malformed traceparent falls back
// to StartSpan semantics (parent from ctx, else new root).
func (t *Tracer) StartSpanRemote(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if traceID, parentID, ok := ParseTraceparent(traceparent); ok {
		s := t.newSpan(name, traceID, parentID)
		return ContextWithSpan(ctx, s), s
	}
	return t.StartSpan(ctx, name)
}

func (t *Tracer) newSpan(name, traceID, parentID string) *Span {
	if traceID == "" {
		traceID = NewTraceID()
	}
	t.started.Add(1)
	now := time.Now() // carries the monotonic clock for duration math
	return &Span{
		tracer: t,
		start:  now,
		data: SpanData{
			TraceID:  traceID,
			SpanID:   NewSpanID(),
			ParentID: parentID,
			Name:     name,
			Node:     t.node,
			Start:    now,
		},
	}
}

// Child starts a child span without threading a context — for callers
// that hold the parent span directly.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	traceID, parentID := s.data.TraceID, s.data.SpanID
	s.mu.Unlock()
	return s.tracer.newSpan(name, traceID, parentID)
}

// TraceID returns the span's trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// Traceparent renders the span as a W3C traceparent header value ("" on
// nil) for injection into outbound requests.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.data.TraceID, s.data.SpanID)
}

// SetAttr records a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
}

// SetAttrInt records an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetStatus records the span outcome (e.g. "ok", "error", "cancelled").
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.data.Status = status
	}
}

// Event appends a timestamped event with optional key/value attribute
// pairs (an odd trailing key is ignored). Events beyond the tracer's
// per-span cap are counted in DroppedEvents instead of stored.
func (s *Span) Event(name string, kv ...string) {
	if s == nil {
		return
	}
	offset := time.Since(s.start).Nanoseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if len(s.data.Events) >= s.tracer.maxEvents {
		s.data.DroppedEvents++
		return
	}
	ev := SpanEvent{Name: name, OffsetNs: offset}
	if len(kv) >= 2 {
		ev.Attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ev.Attrs[kv[i]] = kv[i+1]
		}
	}
	s.data.Events = append(s.data.Events, ev)
}

// End finishes the span: stamps the monotonic duration, moves the record
// into the tracer ring and span log, and makes further mutations no-ops.
// End is idempotent; only the first call takes effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	elapsed := time.Since(s.start).Nanoseconds()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurationNs = elapsed
	sd := s.data
	s.mu.Unlock()

	t := s.tracer
	t.finished.Add(1)
	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, sd)
	} else {
		t.ring[t.next] = sd
		t.next = (t.next + 1) % t.capacity
	}
	t.mu.Unlock()
	if t.log != nil {
		t.log.Write(sd) // sticky error surfaces on Close
	}
}

// Trace returns every retained finished span of the given trace, sorted
// by start time (span ID breaking ties). Spans evicted from the ring or
// still open are not included.
func (t *Tracer) Trace(traceID string) []SpanData {
	if t == nil || traceID == "" {
		return nil
	}
	t.mu.Lock()
	var out []SpanData
	for i := range t.ring {
		if t.ring[i].TraceID == traceID {
			out = append(out, t.ring[i])
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// Traces summarises the retained traces, most recent first, up to limit
// (limit <= 0 means all).
func (t *Tracer) Traces(limit int) []TraceSummary {
	if t == nil {
		return nil
	}
	type agg struct {
		first, last time.Time // earliest start, latest end
		root        SpanData  // earliest parentless span, else earliest span
		hasRoot     bool
		spans       int
	}
	t.mu.Lock()
	groups := make(map[string]*agg)
	for i := range t.ring {
		sd := &t.ring[i]
		g := groups[sd.TraceID]
		if g == nil {
			g = &agg{first: sd.Start, last: sd.Start.Add(time.Duration(sd.DurationNs))}
			groups[sd.TraceID] = g
		}
		if sd.Start.Before(g.first) {
			g.first = sd.Start
		}
		if end := sd.Start.Add(time.Duration(sd.DurationNs)); end.After(g.last) {
			g.last = end
		}
		isRoot := sd.ParentID == ""
		switch {
		case isRoot && (!g.hasRoot || sd.Start.Before(g.root.Start)):
			g.root, g.hasRoot = *sd, true
		case !g.hasRoot && (g.spans == 0 || sd.Start.Before(g.root.Start)):
			g.root = *sd
		}
		g.spans++
	}
	t.mu.Unlock()
	out := make([]TraceSummary, 0, len(groups))
	for id, g := range groups {
		out = append(out, TraceSummary{
			TraceID:    id,
			Root:       g.root.Name,
			Node:       g.root.Node,
			Start:      g.first,
			DurationNs: g.last.Sub(g.first).Nanoseconds(),
			Spans:      g.spans,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].TraceID < out[j].TraceID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// NewTraceID returns 16 random bytes in lowercase hex (32 chars).
func NewTraceID() string { return randomHex(16) }

// NewSpanID returns 8 random bytes in lowercase hex (16 chars).
func NewSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("telemetry: crypto/rand failed: %v", err))
	}
	// The W3C spec forbids the all-zero ID; a random all-zero draw is
	// astronomically unlikely but cheap to repair.
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		b[n-1] = 1
	}
	return hex.EncodeToString(b)
}

// FormatTraceparent renders a version-00 W3C traceparent header value
// with the sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent validates a W3C traceparent header value and returns
// its trace and parent-span IDs. It accepts any version except the
// reserved "ff", requires lowercase hex fields of the exact widths, and
// rejects all-zero IDs, per the spec.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	version, trace, span, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if len(h) > 55 && (version == "00" || h[55] != '-') {
		// Version 00 has no trailing fields; future versions may append
		// "-..." suffixes which we ignore.
		return "", "", false
	}
	if version == "ff" || !isLowerHex(version) || !isLowerHex(flags) {
		return "", "", false
	}
	if !isLowerHex(trace) || !isLowerHex(span) || allZeroHex(trace) || allZeroHex(span) {
		return "", "", false
	}
	return trace, span, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZeroHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// SpanLog writes finished spans as JSONL, one SpanData document per
// line, following the internal/trace writer conventions: a mutex guards
// the underlying writer, the first error sticks and is returned from
// every later call, and each record is flushed so a crash loses at most
// the torn final line.
type SpanLog struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewSpanLog wraps an io.Writer. If w also implements io.Closer, Close
// closes it.
func NewSpanLog(w io.Writer) *SpanLog {
	l := &SpanLog{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// OpenSpanLog creates (or truncates) a span log file.
func OpenSpanLog(path string) (*SpanLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewSpanLog(f), nil
}

// Write appends one span record.
func (l *SpanLog) Write(sd SpanData) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	b, err := json.Marshal(sd)
	if err != nil {
		l.err = err
		return err
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		l.err = err
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Close flushes and closes the underlying writer, returning the sticky
// error if any write failed.
func (l *SpanLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ferr := l.w.Flush()
	if l.err == nil {
		l.err = ferr
	}
	if l.c != nil {
		if cerr := l.c.Close(); l.err == nil {
			l.err = cerr
		}
	}
	return l.err
}
