// Package telemetry is the repo's zero-dependency metrics layer: a
// registry of atomic counters, gauges and fixed-bucket histograms with
// Prometheus text exposition (version 0.0.4). It is the single sink for
// solver and daemon instrumentation — the CE loop's per-iteration
// internals, the jobs manager's queue/cache/lifecycle series and the
// HTTP layer's per-route RED metrics all land here, and the matchd
// /metrics endpoint renders the registry instead of hand-rolled fmt
// calls.
//
// Design constraints, in order:
//
//  1. No dependencies. The daemon takes none; neither does this package.
//  2. Hot-path writes are lock-free. Counter.Add, Gauge.Set and
//     Histogram.Observe are a handful of atomic operations; the registry
//     mutex is touched only at registration and exposition time. Vec
//     lookups (With) do take the family lock — hot paths resolve their
//     child once and cache the pointer.
//  3. Exposition is deterministic: families sort by name, children by
//     label values, so scrapes diff cleanly and tests can assert on
//     substrings.
//
// Float values are stored as uint64 bit patterns updated by CAS, the
// standard trick for atomic float64 accumulation without a mutex.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricType discriminates exposition TYPE lines.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and one child per
// distinct label-value combination (exactly one, unlabeled, for plain
// metrics).
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]child
	fn       func() float64 // GaugeFunc families only
}

type child interface {
	write(w io.Writer, fam *family, labelPart string)
}

// register files a new family, panicking on a name collision — metric
// registration happens once at component start-up, so a duplicate is a
// programming error, not a runtime condition.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", f.name))
	}
	r.families[f.name] = f
	return f
}

func newFamily(name, help string, typ metricType, labels []string) *family {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	return &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   labels,
		children: make(map[string]child),
	}
}

// child lookup key: label values joined by \xff (cannot appear in valid
// UTF-8 label positions that matter for collision since the count is
// fixed by the schema).
const keySep = "\xff"

func (f *family) child(lvs []string, make func() child) child {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	key := strings.Join(lvs, keySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	return c
}

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative v panics (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("telemetry: counter decreased")
	}
	atomicAddFloat(&c.bits, v)
}

// AddUint increases the counter by n without float conversion cost at the
// call site beyond one cast.
func (c *Counter) AddUint(n uint64) { c.Add(float64(n)) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, fam *family, labelPart string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPart, formatFloat(c.Value()))
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) { atomicAddFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, fam *family, labelPart string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPart, formatFloat(g.Value()))
}

// gaugeFn renders a callback-backed gauge, evaluated at scrape time.
type gaugeFn struct{ fn func() float64 }

func (g *gaugeFn) write(w io.Writer, fam *family, labelPart string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labelPart, formatFloat(g.fn()))
}

// Histogram accumulates observations into fixed buckets. Buckets are
// upper bounds in increasing order; an implicit +Inf bucket catches the
// rest. Observe is lock-free: one atomic increment for the bucket, one
// for the count, one CAS loop for the sum.
type Histogram struct {
	upper   []float64
	buckets []atomic.Uint64 // per-bucket (non-cumulative); len(upper)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
	// exemplars holds the most recent trace-linked observation per
	// bucket, rendered only in the OpenMetrics-flavoured exposition.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar links one observation to the trace that produced it.
type exemplar struct {
	value   float64
	traceID string
	ts      time.Time
}

func newHistogram(upper []float64) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic("telemetry: histogram buckets not strictly increasing")
		}
	}
	return &Histogram{
		upper:     upper,
		buckets:   make([]atomic.Uint64, len(upper)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(upper)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// attaches it as the bucket's exemplar so dashboards can jump from a
// latency bucket to the trace that landed in it. Costs one extra atomic
// pointer store over Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.upper, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	if traceID != "" {
		h.exemplars[i].Store(&exemplar{value: v, traceID: traceID, ts: time.Now()})
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(w io.Writer, fam *family, labelPart string) {
	h.writeWith(w, fam, labelPart, false)
}

func (h *Histogram) writeWith(w io.Writer, fam *family, labelPart string, exemplars bool) {
	// Re-derive the label part with the le label appended: strip the
	// braces and splice.
	inner := strings.TrimSuffix(strings.TrimPrefix(labelPart, "{"), "}")
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", fam.name, mergeLabels(inner, "le", formatFloat(ub)), cum, h.exemplarSuffix(i, exemplars))
	}
	last := len(h.upper)
	cum += h.buckets[last].Load()
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", fam.name, mergeLabels(inner, "le", "+Inf"), cum, h.exemplarSuffix(last, exemplars))
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelPart, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelPart, h.count.Load())
}

// exemplarSuffix renders the OpenMetrics exemplar annotation for bucket
// i, or "" when exemplars are off or the bucket has none.
func (h *Histogram) exemplarSuffix(i int, enabled bool) string {
	if !enabled {
		return ""
	}
	e := h.exemplars[i].Load()
	if e == nil {
		return ""
	}
	ts := float64(e.ts.UnixNano()) / 1e9
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %s", escapeLabel(e.traceID), formatFloat(e.value), strconv.FormatFloat(ts, 'f', 3, 64))
}

func mergeLabels(inner, name, value string) string {
	pair := name + "=\"" + escapeLabel(value) + "\""
	if inner == "" {
		return "{" + pair + "}"
	}
	return "{" + inner + "," + pair + "}"
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (created on first
// use). Hot paths should cache the returned pointer.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.child(labelValues, func() child { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.child(labelValues, func() child { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	fam := v.fam
	return fam.child(labelValues, func() child { return newHistogram(fam.buckets) }).(*Histogram)
}

// Counter registers and returns a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(newFamily(name, help, typeCounter, nil))
	return f.child(nil, func() child { return &Counter{} }).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(newFamily(name, help, typeCounter, labels))}
}

// Gauge registers and returns a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(newFamily(name, help, typeGauge, nil))
	return f.child(nil, func() child { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(newFamily(name, help, typeGauge, labels))}
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values that already live elsewhere (queue depth, cache
// size) and would otherwise need double bookkeeping. fn must be safe to
// call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(newFamily(name, help, typeGauge, nil))
	f.mu.Lock()
	f.children[""] = &gaugeFn{fn: fn}
	f.mu.Unlock()
}

// Histogram registers and returns a plain histogram with the given
// bucket upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(newFamily(name, help, typeHistogram, nil))
	f.buckets = buckets
	return f.child(nil, func() child { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(newFamily(name, help, typeHistogram, labels))
	f.buckets = buckets
	return &HistogramVec{fam: f}
}

// ExpBuckets returns n bucket bounds start, start*factor, ...,
// start*factor^(n-1) — the standard exponential latency ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and children by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var sb strings.Builder
	for _, f := range fams {
		f.writeTo(&sb, false)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteOpenMetrics renders the registry like WritePrometheus but with
// OpenMetrics exemplar annotations on histogram bucket lines
// (`# {trace_id="..."} value timestamp`) and a terminating `# EOF`
// marker. The default /metrics output stays plain text-format 0.0.4;
// scrapers that understand exemplars negotiate this flavour explicitly.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var sb strings.Builder
	for _, f := range fams {
		f.writeTo(&sb, true)
	}
	sb.WriteString("# EOF\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func (f *family) writeTo(w io.Writer, exemplars bool) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make([]child, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	for i, c := range children {
		if h, ok := c.(*Histogram); ok {
			h.writeWith(w, f, f.labelPart(keys[i]), exemplars)
			continue
		}
		c.write(w, f, f.labelPart(keys[i]))
	}
}

// labelPart renders the {name="value",...} selector for a child key, or
// "" for unlabeled children.
func (f *family) labelPart(key string) string {
	if len(f.labels) == 0 {
		return ""
	}
	values := strings.Split(key, keySep)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, name := range f.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders values the way Prometheus clients do: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// atomicAddFloat adds v to the float64 stored as bits in u.
func atomicAddFloat(u *atomic.Uint64, v float64) {
	for {
		old := u.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if u.CompareAndSwap(old, next) {
			return
		}
	}
}
