package cost

import (
	"fmt"
	"math"
	"sort"
)

// State is a mutable mapping with incrementally maintained per-resource
// loads. Local-search style solvers (2-swap hill climbing, simulated
// annealing, the GA's post-pass) use it to score neighbourhood moves in
// O(deg) instead of re-walking the whole TIG.
//
// Only swap moves are exposed because the experiments use bijective
// mappings; SetTask supports general moves for many-to-one mappings.
// State is not safe for concurrent use.
type State struct {
	eval    *Evaluator
	mapping Mapping
	loads   []float64

	// Probe scratch for the delta ExecAfterSwap path: delta[r] holds the
	// load change of resource r for the probed move, valid only while
	// deltaEpoch[r] == epoch; touched lists the stamped resources.
	delta      []float64
	deltaEpoch []uint64
	touched    []int
	epoch      uint64

	// loadOrder caches the resources sorted by descending load (ties by
	// index), so a probe finds the maximum over un-probed resources by
	// walking a prefix instead of scanning all of them. It is rebuilt
	// lazily after any committed mutation.
	loadOrder  []int
	orderDirty bool
}

// NewState initialises incremental state for mapping m (copied).
func NewState(e *Evaluator, m Mapping) (*State, error) {
	if len(m) != e.n {
		return nil, fmt.Errorf("cost: mapping length %d for %d tasks", len(m), e.n)
	}
	if err := m.Validate(e.r); err != nil {
		return nil, err
	}
	s := &State{
		eval:       e,
		mapping:    m.Clone(),
		delta:      make([]float64, e.r),
		deltaEpoch: make([]uint64, e.r),
		touched:    make([]int, 0, 8),
		loadOrder:  make([]int, e.r),
		orderDirty: true,
	}
	s.loads = e.Loads(s.mapping, nil)
	return s, nil
}

// Mapping returns the current mapping. Callers must not mutate it.
func (s *State) Mapping() Mapping { return s.mapping }

// Loads returns the current per-resource loads. Callers must not mutate.
func (s *State) Loads() []float64 { return s.loads }

// Exec returns the current makespan.
func (s *State) Exec() float64 {
	maxLoad := math.Inf(-1)
	for _, l := range s.loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// removeTask subtracts task t's contributions from the load vector,
// assuming the mapping still records t's current resource.
func (s *State) removeTask(t int) {
	e := s.eval
	rs := s.mapping[t]
	s.loads[rs] -= e.tcp[t*e.r+rs]
	for _, nb := range e.tig.Neighbors(t) {
		b := s.mapping[nb.To]
		if b == rs {
			continue
		}
		c := nb.Weight * e.link[rs*e.r+b]
		s.loads[rs] -= c
		s.loads[b] -= c
	}
}

// addTask adds task t's contributions for its current mapping entry.
func (s *State) addTask(t int) {
	e := s.eval
	rs := s.mapping[t]
	s.loads[rs] += e.tcp[t*e.r+rs]
	for _, nb := range e.tig.Neighbors(t) {
		b := s.mapping[nb.To]
		if b == rs {
			continue
		}
		c := nb.Weight * e.link[rs*e.r+b]
		s.loads[rs] += c
		s.loads[b] += c
	}
}

// SetTask moves task t to resource rs, updating loads incrementally.
func (s *State) SetTask(t, rs int) {
	if rs == s.mapping[t] {
		return
	}
	s.removeTask(t)
	s.mapping[t] = rs
	s.addTask(t)
	s.orderDirty = true
}

// Swap exchanges the resources of tasks t1 and t2, preserving
// permutation-ness, in O(deg(t1) + deg(t2)).
func (s *State) Swap(t1, t2 int) {
	if t1 == t2 {
		return
	}
	r1, r2 := s.mapping[t1], s.mapping[t2]
	if r1 == r2 {
		return
	}
	s.removeTask(t1)
	s.removeTask(t2)
	s.mapping[t1], s.mapping[t2] = r2, r1
	s.addTask(t1)
	s.addTask(t2)
	s.orderDirty = true
}

// ExecAfterSwap returns the makespan that Swap(t1, t2) would produce,
// without committing the move and without mutating any state. It is the
// innermost operation of the hill-climbing polish pass, so it takes the
// true delta path: the load changes of the O(deg) affected resources (the
// two swapped hosts plus every neighbour's host, whose link costs change
// with the endpoints) are accumulated into epoch-stamped scratch, and the
// post-swap makespan is max(affected new loads, largest unaffected load)
// — the latter read from a lazily maintained descending load order rather
// than an O(|Vr|) scan. Compared with the previous implementation
// (perform the double swap, scan all loads, swap back), a probe does two
// neighbour walks instead of eight and no full-vector scan.
func (s *State) ExecAfterSwap(t1, t2 int) float64 {
	if t1 == t2 {
		return s.Exec()
	}
	r1, r2 := s.mapping[t1], s.mapping[t2]
	if r1 == r2 {
		return s.Exec()
	}
	s.beginProbe()
	s.probeMove(t1, t2, r1, r2)
	s.probeMove(t2, t1, r2, r1)

	best := math.Inf(-1)
	for _, r := range s.touched {
		if v := s.loads[r] + s.delta[r]; v > best {
			best = v
		}
	}
	// The largest load among un-probed resources: first un-stamped entry
	// of the descending load order.
	s.ensureOrder()
	for _, r := range s.loadOrder {
		if s.deltaEpoch[r] == s.epoch {
			continue
		}
		if s.loads[r] > best {
			best = s.loads[r]
		}
		break
	}
	return best
}

// beginProbe starts a fresh epoch for the delta scratch.
func (s *State) beginProbe() {
	s.epoch++
	if s.epoch == 0 { // uint64 wrap: invalidate stale stamps
		for i := range s.deltaEpoch {
			s.deltaEpoch[i] = 0
		}
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

// probeDelta stamps resource r for the current probe and accumulates v
// into its pending load change.
func (s *State) probeDelta(r int, v float64) {
	if s.deltaEpoch[r] != s.epoch {
		s.deltaEpoch[r] = s.epoch
		s.delta[r] = 0
		s.touched = append(s.touched, r)
	}
	s.delta[r] += v
}

// probeMove accumulates the load deltas of moving task t from resource
// from to resource to, where other is the task moving the opposite way
// (the edge between the swapped pair, if any, keeps its symmetric link
// cost and is skipped). Other tasks' placements are unchanged.
func (s *State) probeMove(t, other, from, to int) {
	e := s.eval
	s.probeDelta(from, -e.tcp[t*e.r+from])
	s.probeDelta(to, e.tcp[t*e.r+to])
	for _, nb := range e.tig.Neighbors(t) {
		if nb.To == other {
			continue
		}
		b := s.mapping[nb.To]
		if b != from {
			c := nb.Weight * e.link[from*e.r+b]
			s.probeDelta(from, -c)
			s.probeDelta(b, -c)
		}
		if b != to {
			c := nb.Weight * e.link[to*e.r+b]
			s.probeDelta(to, c)
			s.probeDelta(b, c)
		}
	}
}

// ensureOrder rebuilds the cached descending load order if a committed
// mutation invalidated it.
func (s *State) ensureOrder() {
	if !s.orderDirty {
		return
	}
	for i := range s.loadOrder {
		s.loadOrder[i] = i
	}
	sort.Slice(s.loadOrder, func(a, b int) bool {
		la, lb := s.loads[s.loadOrder[a]], s.loads[s.loadOrder[b]]
		if la != lb {
			return la > lb
		}
		return s.loadOrder[a] < s.loadOrder[b]
	})
	s.orderDirty = false
}

// execAfterSwapBySwapping is the pre-delta reference implementation:
// perform the swap, read the makespan, swap back. Retained for
// cross-checking the delta path in tests and benchmarks.
func (s *State) execAfterSwapBySwapping(t1, t2 int) float64 {
	s.Swap(t1, t2)
	exec := s.Exec()
	s.Swap(t1, t2)
	return exec
}

// Recompute rebuilds the load vector from scratch. Exposed for tests and
// for long-running searches that want to shed accumulated floating-point
// drift.
func (s *State) Recompute() {
	s.loads = s.eval.Loads(s.mapping, s.loads)
	s.orderDirty = true
}
