package cost

import (
	"fmt"
	"math"
)

// State is a mutable mapping with incrementally maintained per-resource
// loads. Local-search style solvers (2-swap hill climbing, simulated
// annealing, the GA's post-pass) use it to score neighbourhood moves in
// O(deg) instead of re-walking the whole TIG.
//
// Only swap moves are exposed because the experiments use bijective
// mappings; SetTask supports general moves for many-to-one mappings.
// State is not safe for concurrent use.
type State struct {
	eval    *Evaluator
	mapping Mapping
	loads   []float64
}

// NewState initialises incremental state for mapping m (copied).
func NewState(e *Evaluator, m Mapping) (*State, error) {
	if len(m) != e.n {
		return nil, fmt.Errorf("cost: mapping length %d for %d tasks", len(m), e.n)
	}
	if err := m.Validate(e.r); err != nil {
		return nil, err
	}
	s := &State{eval: e, mapping: m.Clone()}
	s.loads = e.Loads(s.mapping, nil)
	return s, nil
}

// Mapping returns the current mapping. Callers must not mutate it.
func (s *State) Mapping() Mapping { return s.mapping }

// Loads returns the current per-resource loads. Callers must not mutate.
func (s *State) Loads() []float64 { return s.loads }

// Exec returns the current makespan.
func (s *State) Exec() float64 {
	maxLoad := math.Inf(-1)
	for _, l := range s.loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// removeTask subtracts task t's contributions from the load vector,
// assuming the mapping still records t's current resource.
func (s *State) removeTask(t int) {
	e := s.eval
	rs := s.mapping[t]
	s.loads[rs] -= e.tcp[t*e.r+rs]
	for _, nb := range e.tig.Neighbors(t) {
		b := s.mapping[nb.To]
		if b == rs {
			continue
		}
		c := nb.Weight * e.link[rs*e.r+b]
		s.loads[rs] -= c
		s.loads[b] -= c
	}
}

// addTask adds task t's contributions for its current mapping entry.
func (s *State) addTask(t int) {
	e := s.eval
	rs := s.mapping[t]
	s.loads[rs] += e.tcp[t*e.r+rs]
	for _, nb := range e.tig.Neighbors(t) {
		b := s.mapping[nb.To]
		if b == rs {
			continue
		}
		c := nb.Weight * e.link[rs*e.r+b]
		s.loads[rs] += c
		s.loads[b] += c
	}
}

// SetTask moves task t to resource rs, updating loads incrementally.
func (s *State) SetTask(t, rs int) {
	if rs == s.mapping[t] {
		return
	}
	s.removeTask(t)
	s.mapping[t] = rs
	s.addTask(t)
}

// Swap exchanges the resources of tasks t1 and t2, preserving
// permutation-ness, in O(deg(t1) + deg(t2)).
func (s *State) Swap(t1, t2 int) {
	if t1 == t2 {
		return
	}
	r1, r2 := s.mapping[t1], s.mapping[t2]
	if r1 == r2 {
		return
	}
	s.removeTask(t1)
	s.removeTask(t2)
	s.mapping[t1], s.mapping[t2] = r2, r1
	s.addTask(t1)
	s.addTask(t2)
}

// ExecAfterSwap returns the makespan that Swap(t1, t2) would produce,
// without committing the move. It performs the swap, reads the makespan
// and swaps back; both directions are O(deg).
func (s *State) ExecAfterSwap(t1, t2 int) float64 {
	s.Swap(t1, t2)
	exec := s.Exec()
	s.Swap(t1, t2)
	return exec
}

// Recompute rebuilds the load vector from scratch. Exposed for tests and
// for long-running searches that want to shed accumulated floating-point
// drift.
func (s *State) Recompute() {
	s.loads = s.eval.Loads(s.mapping, s.loads)
}
