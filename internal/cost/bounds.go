package cost

import "math"

// LowerBound returns a provable lower bound on Exec(M) over all bijective
// mappings, enabling optimality-gap reporting for the heuristics. It is
// the maximum of three relaxations:
//
//  1. Work bound: even if load were perfectly divisible, the busiest
//     resource carries at least (sum of all per-task best-case compute)
//     divided by the resource count... more precisely, assigning every
//     task its cheapest resource cannot beat the average:
//     LB1 = (sum_t W^t * min_s w_s applied per-task best) / |Vr|.
//  2. Compute-assignment bound: in a bijective mapping some task must
//     take each resource; the busiest resource is at least the best
//     achievable maximum of the per-task compute times under the optimal
//     assignment, relaxed here to max over tasks of their *cheapest*
//     compute time: LB2 = max_t min_s W^t * w_s.
//  3. Edge bound: for any TIG edge (t, a), the two endpoints live on
//     distinct resources (bijective mapping, n > 1), so each endpoint's
//     resource pays at least C^{t,a} * min-positive link cost, plus the
//     endpoint's own cheapest compute:
//     LB3 = max_{(t,a)} [ C^{t,a} * c_min + max(min_s Tcp[t][s], min_s Tcp[a][s]) ].
//
// All three are valid for every bijective mapping; the returned value is
// their maximum. For non-bijective (many-to-one) mappings only LB1 and
// LB2 remain valid with co-location allowed, so ManyToOneLowerBound
// exposes the weaker pair.
func LowerBound(e *Evaluator) float64 {
	if e.n == 0 {
		return 0
	}
	lb1 := 0.0 // total cheapest compute spread perfectly
	lb2 := 0.0 // heaviest task on its cheapest resource
	minCompute := PerTaskMinCompute(e)
	for _, best := range minCompute {
		lb1 += best
		if best > lb2 {
			lb2 = best
		}
	}
	lb1 /= float64(e.r)

	lb3 := 0.0
	if e.n > 1 {
		cMin := math.Inf(1)
		for s := 0; s < e.r; s++ {
			for b := 0; b < e.r; b++ {
				if s == b {
					continue
				}
				if v := e.link[s*e.r+b]; v < cMin {
					cMin = v
				}
			}
		}
		if !math.IsInf(cMin, 1) {
			for _, edge := range e.tig.Edges() {
				endpointFloor := math.Max(minCompute[edge.U], minCompute[edge.V])
				if v := edge.Weight*cMin + endpointFloor; v > lb3 {
					lb3 = v
				}
			}
		}
	}
	return math.Max(lb1, math.Max(lb2, lb3))
}

// PerTaskMinCompute returns min_s Tcp[t][s] for every task t — the
// cheapest possible compute charge each task adds to *some* resource under
// any mapping. It is the per-task floor all three LowerBound relaxations
// build on, exported separately so the gamma-pruned streaming scorer can
// derive its remaining-work bound from the same quantity.
func PerTaskMinCompute(e *Evaluator) []float64 {
	minCompute := make([]float64, e.n)
	for t := 0; t < e.n; t++ {
		best := math.Inf(1)
		for s := 0; s < e.r; s++ {
			if v := e.tcp[t*e.r+s]; v < best {
				best = v
			}
		}
		minCompute[t] = best
	}
	return minCompute
}

// ManyToOneLowerBound returns a lower bound valid when several tasks may
// share a resource (communication can be fully internalised, so only the
// compute relaxations survive).
func ManyToOneLowerBound(e *Evaluator) float64 {
	if e.n == 0 {
		return 0
	}
	lb1 := 0.0
	lb2 := 0.0
	for t := 0; t < e.n; t++ {
		best := math.Inf(1)
		for s := 0; s < e.r; s++ {
			if v := e.tcp[t*e.r+s]; v < best {
				best = v
			}
		}
		lb1 += best
		if best > lb2 {
			lb2 = best
		}
	}
	lb1 /= float64(e.r)
	return math.Max(lb1, lb2)
}
