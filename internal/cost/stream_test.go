package cost

import (
	"math"
	"testing"

	"matchsim/internal/gen"
	"matchsim/internal/graph"
	"matchsim/internal/xrand"
)

// randomFloatInstance builds an instance with arbitrary float weights —
// the regime where the streaming accumulator and the canonical Exec can
// differ by rounding, bounded at 1e-9 relative.
func randomFloatInstance(t *testing.T, rng *xrand.RNG, tasks, resources int) *Evaluator {
	t.Helper()
	w := make([]float64, tasks)
	for i := range w {
		w[i] = rng.Float64()*9 + 0.5
	}
	tig := graph.NewTIGWithWeights(w)
	for i := 0; i < tasks; i++ {
		for j := i + 1; j < tasks; j++ {
			if rng.Float64() < 0.3 {
				tig.MustAddEdge(i, j, rng.Float64()*50+1)
			}
		}
	}
	costs := make([]float64, resources)
	for i := range costs {
		costs[i] = rng.Float64()*4 + 0.5
	}
	rg := graph.NewResourceGraphWithCosts(costs)
	for i := 0; i < resources; i++ {
		for j := i + 1; j < resources; j++ {
			rg.MustAddLink(i, j, rng.Float64()*10+0.5)
		}
	}
	e, err := NewEvaluator(tig, rg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randomPermutation(rng *xrand.RNG, n int) Mapping {
	m := make(Mapping, n)
	rng.PermInto(m)
	return m
}

func randomManyToOne(rng *xrand.RNG, tasks, resources int) Mapping {
	m := make(Mapping, tasks)
	for i := range m {
		m[i] = rng.Intn(resources)
	}
	return m
}

func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

// TestStreamScorerMatchesExec: the fused accumulator must agree with the
// canonical evaluator within 1e-9 relative on float-weight instances, for
// both bijective and many-to-one mappings, across sizes.
func TestStreamScorerMatchesExec(t *testing.T) {
	rng := xrand.New(31)
	for _, n := range []int{4, 16, 64} {
		// Bijective: |Vt| = |Vr| = n.
		e := randomFloatInstance(t, rng, n, n)
		ss := NewStreamScorer(e)
		for trial := 0; trial < 100; trial++ {
			m := randomPermutation(rng, n)
			got, err := ss.Score(m)
			if err != nil {
				t.Fatal(err)
			}
			if want := e.Exec(m); relDiff(got, want) > 1e-9 {
				t.Fatalf("n=%d bijective trial %d: stream %v vs exec %v", n, trial, got, want)
			}
		}
		// Many-to-one: fewer resources than tasks.
		r := n/2 + 1
		e2 := randomFloatInstance(t, rng, n, r)
		ss2 := NewStreamScorer(e2)
		for trial := 0; trial < 100; trial++ {
			m := randomManyToOne(rng, n, r)
			got, err := ss2.Score(m)
			if err != nil {
				t.Fatal(err)
			}
			if want := e2.Exec(m); relDiff(got, want) > 1e-9 {
				t.Fatalf("n=%d many-to-one trial %d: stream %v vs exec %v", n, trial, got, want)
			}
		}
	}
}

// TestStreamScorerExactOnPaperInstances: the Section 5.2 generator draws
// every weight from small integer ranges, so all load sums are exact in
// float64 regardless of accumulation order — the fused score must be
// bit-identical to Exec there. This equality is what makes the fused and
// unfused CE paths interchangeable on paper workloads.
func TestStreamScorerExactOnPaperInstances(t *testing.T) {
	rng := xrand.New(32)
	for _, n := range []int{10, 20, 50} {
		inst, err := gen.PaperInstance(uint64(n), n, gen.DefaultPaperConfig())
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEvaluator(inst.TIG, inst.Platform)
		if err != nil {
			t.Fatal(err)
		}
		ss := NewStreamScorer(e)
		for trial := 0; trial < 50; trial++ {
			m := randomPermutation(rng, n)
			got, err := ss.Score(m)
			if err != nil {
				t.Fatal(err)
			}
			if want := e.Exec(m); got != want {
				t.Fatalf("n=%d trial %d: stream %v != exec %v (must be bit-identical)", n, trial, got, want)
			}
		}
	}
}

// TestStreamScorerPlacementOrderInvariance: on integer-weight instances
// the makespan must not depend on the order tasks are placed in.
func TestStreamScorerPlacementOrderInvariance(t *testing.T) {
	rng := xrand.New(33)
	inst, err := gen.PaperInstance(9, 16, gen.DefaultPaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamScorer(e)
	m := randomPermutation(rng, 16)
	want := e.Exec(m)
	order := make([]int, 16)
	for trial := 0; trial < 30; trial++ {
		rng.PermInto(order)
		ss.Reset()
		for _, task := range order {
			ss.Place(task, m[task])
		}
		if got := ss.Makespan(); got != want {
			t.Fatalf("order %v: makespan %v != %v", order, got, want)
		}
	}
}

// TestStreamScorerReuse: a scorer must be reusable across draws without
// leaking state from earlier placements.
func TestStreamScorerReuse(t *testing.T) {
	rng := xrand.New(34)
	e := randomFloatInstance(t, rng, 12, 12)
	ss := NewStreamScorer(e)
	for trial := 0; trial < 200; trial++ {
		m := randomPermutation(rng, 12)
		got, err := ss.Score(m)
		if err != nil {
			t.Fatal(err)
		}
		if want := e.Exec(m); relDiff(got, want) > 1e-9 {
			t.Fatalf("trial %d: reused scorer drifted: %v vs %v", trial, got, want)
		}
	}
}

// TestExecAfterSwapDeltaMatchesReference: the delta probe must agree with
// the swap-and-revert reference and leave the state untouched, including
// after committed swaps and many-to-one SetTask moves.
func TestExecAfterSwapDeltaMatchesReference(t *testing.T) {
	rng := xrand.New(35)
	for _, n := range []int{4, 16, 64} {
		e := randomFloatInstance(t, rng, n, n)
		st, err := NewState(e, randomPermutation(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			got := st.ExecAfterSwap(i, j)
			want := st.execAfterSwapBySwapping(i, j)
			if relDiff(got, want) > 1e-9 {
				t.Fatalf("n=%d trial %d swap(%d,%d): delta %v vs reference %v", n, trial, i, j, got, want)
			}
			// Every few probes, commit a mutation so the cached order and
			// loads churn.
			switch trial % 5 {
			case 0:
				st.Swap(rng.Intn(n), rng.Intn(n))
			case 2:
				st.SetTask(rng.Intn(n), rng.Intn(n))
			}
		}
		// The probe must not have corrupted incremental state. Committed
		// swaps accumulate a little float error on their own, so compare
		// with a mixed absolute/relative tolerance.
		fresh := e.Loads(st.Mapping(), nil)
		for r, l := range st.Loads() {
			if math.Abs(l-fresh[r]) > 1e-9*(1+math.Abs(fresh[r])) {
				t.Fatalf("n=%d: load[%d] drifted: %v vs recomputed %v", n, r, l, fresh[r])
			}
		}
	}
}

// TestExecAfterSwapDeltaOnPaperInstance: exact agreement on the integer-
// weight generator output.
func TestExecAfterSwapDeltaOnPaperInstance(t *testing.T) {
	rng := xrand.New(36)
	inst, err := gen.PaperInstance(4, 20, gen.DefaultPaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(e, randomPermutation(rng, 20))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		i, j := rng.Intn(20), rng.Intn(20)
		if got, want := st.ExecAfterSwap(i, j), st.execAfterSwapBySwapping(i, j); got != want {
			t.Fatalf("trial %d swap(%d,%d): delta %v != reference %v", trial, i, j, got, want)
		}
		if trial%7 == 0 {
			st.Swap(rng.Intn(20), rng.Intn(20))
		}
	}
}

func BenchmarkExecAfterSwap(b *testing.B) {
	inst, err := gen.PaperInstance(2005, 64, gen.DefaultPaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	st, err := NewState(e, randomPermutation(rng, 64))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.ExecAfterSwap(i%64, (i*7+13)%64)
		}
	})
	b.Run("swap-revert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.execAfterSwapBySwapping(i%64, (i*7+13)%64)
		}
	})
}

func BenchmarkStreamScore64(b *testing.B) {
	inst, err := gen.PaperInstance(2005, 64, gen.DefaultPaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	m := randomPermutation(rng, 64)
	ss := NewStreamScorer(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ss.Score(m); err != nil {
			b.Fatal(err)
		}
	}
}
