package cost

import (
	"math"
	"sort"
	"testing"

	"matchsim/internal/gen"
	"matchsim/internal/graph"
	"matchsim/internal/xrand"
)

// randomFloatInstance builds an instance with arbitrary float weights —
// the regime where the streaming accumulator and the canonical Exec can
// differ by rounding, bounded at 1e-9 relative.
func randomFloatInstance(t *testing.T, rng *xrand.RNG, tasks, resources int) *Evaluator {
	t.Helper()
	w := make([]float64, tasks)
	for i := range w {
		w[i] = rng.Float64()*9 + 0.5
	}
	tig := graph.NewTIGWithWeights(w)
	for i := 0; i < tasks; i++ {
		for j := i + 1; j < tasks; j++ {
			if rng.Float64() < 0.3 {
				tig.MustAddEdge(i, j, rng.Float64()*50+1)
			}
		}
	}
	costs := make([]float64, resources)
	for i := range costs {
		costs[i] = rng.Float64()*4 + 0.5
	}
	rg := graph.NewResourceGraphWithCosts(costs)
	for i := 0; i < resources; i++ {
		for j := i + 1; j < resources; j++ {
			rg.MustAddLink(i, j, rng.Float64()*10+0.5)
		}
	}
	e, err := NewEvaluator(tig, rg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randomPermutation(rng *xrand.RNG, n int) Mapping {
	m := make(Mapping, n)
	rng.PermInto(m)
	return m
}

func randomManyToOne(rng *xrand.RNG, tasks, resources int) Mapping {
	m := make(Mapping, tasks)
	for i := range m {
		m[i] = rng.Intn(resources)
	}
	return m
}

func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

// TestStreamScorerMatchesExec: the fused accumulator must agree with the
// canonical evaluator within 1e-9 relative on float-weight instances, for
// both bijective and many-to-one mappings, across sizes.
func TestStreamScorerMatchesExec(t *testing.T) {
	rng := xrand.New(31)
	for _, n := range []int{4, 16, 64} {
		// Bijective: |Vt| = |Vr| = n.
		e := randomFloatInstance(t, rng, n, n)
		ss := NewStreamScorer(e)
		for trial := 0; trial < 100; trial++ {
			m := randomPermutation(rng, n)
			got, err := ss.Score(m)
			if err != nil {
				t.Fatal(err)
			}
			if want := e.Exec(m); relDiff(got, want) > 1e-9 {
				t.Fatalf("n=%d bijective trial %d: stream %v vs exec %v", n, trial, got, want)
			}
		}
		// Many-to-one: fewer resources than tasks.
		r := n/2 + 1
		e2 := randomFloatInstance(t, rng, n, r)
		ss2 := NewStreamScorer(e2)
		for trial := 0; trial < 100; trial++ {
			m := randomManyToOne(rng, n, r)
			got, err := ss2.Score(m)
			if err != nil {
				t.Fatal(err)
			}
			if want := e2.Exec(m); relDiff(got, want) > 1e-9 {
				t.Fatalf("n=%d many-to-one trial %d: stream %v vs exec %v", n, trial, got, want)
			}
		}
	}
}

// TestStreamScorerExactOnPaperInstances: the Section 5.2 generator draws
// every weight from small integer ranges, so all load sums are exact in
// float64 regardless of accumulation order — the fused score must be
// bit-identical to Exec there. This equality is what makes the fused and
// unfused CE paths interchangeable on paper workloads.
func TestStreamScorerExactOnPaperInstances(t *testing.T) {
	rng := xrand.New(32)
	for _, n := range []int{10, 20, 50} {
		inst, err := gen.PaperInstance(uint64(n), n, gen.DefaultPaperConfig())
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEvaluator(inst.TIG, inst.Platform)
		if err != nil {
			t.Fatal(err)
		}
		ss := NewStreamScorer(e)
		for trial := 0; trial < 50; trial++ {
			m := randomPermutation(rng, n)
			got, err := ss.Score(m)
			if err != nil {
				t.Fatal(err)
			}
			if want := e.Exec(m); got != want {
				t.Fatalf("n=%d trial %d: stream %v != exec %v (must be bit-identical)", n, trial, got, want)
			}
		}
	}
}

// TestStreamScorerPlacementOrderInvariance: on integer-weight instances
// the makespan must not depend on the order tasks are placed in.
func TestStreamScorerPlacementOrderInvariance(t *testing.T) {
	rng := xrand.New(33)
	inst, err := gen.PaperInstance(9, 16, gen.DefaultPaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamScorer(e)
	m := randomPermutation(rng, 16)
	want := e.Exec(m)
	order := make([]int, 16)
	for trial := 0; trial < 30; trial++ {
		rng.PermInto(order)
		ss.Reset()
		for _, task := range order {
			ss.Place(task, m[task])
		}
		if got := ss.Makespan(); got != want {
			t.Fatalf("order %v: makespan %v != %v", order, got, want)
		}
	}
}

// TestStreamScorerReuse: a scorer must be reusable across draws without
// leaking state from earlier placements.
func TestStreamScorerReuse(t *testing.T) {
	rng := xrand.New(34)
	e := randomFloatInstance(t, rng, 12, 12)
	ss := NewStreamScorer(e)
	for trial := 0; trial < 200; trial++ {
		m := randomPermutation(rng, 12)
		got, err := ss.Score(m)
		if err != nil {
			t.Fatal(err)
		}
		if want := e.Exec(m); relDiff(got, want) > 1e-9 {
			t.Fatalf("trial %d: reused scorer drifted: %v vs %v", trial, got, want)
		}
	}
}

// TestExecAfterSwapDeltaMatchesReference: the delta probe must agree with
// the swap-and-revert reference and leave the state untouched, including
// after committed swaps and many-to-one SetTask moves.
func TestExecAfterSwapDeltaMatchesReference(t *testing.T) {
	rng := xrand.New(35)
	for _, n := range []int{4, 16, 64} {
		e := randomFloatInstance(t, rng, n, n)
		st, err := NewState(e, randomPermutation(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			got := st.ExecAfterSwap(i, j)
			want := st.execAfterSwapBySwapping(i, j)
			if relDiff(got, want) > 1e-9 {
				t.Fatalf("n=%d trial %d swap(%d,%d): delta %v vs reference %v", n, trial, i, j, got, want)
			}
			// Every few probes, commit a mutation so the cached order and
			// loads churn.
			switch trial % 5 {
			case 0:
				st.Swap(rng.Intn(n), rng.Intn(n))
			case 2:
				st.SetTask(rng.Intn(n), rng.Intn(n))
			}
		}
		// The probe must not have corrupted incremental state. Committed
		// swaps accumulate a little float error on their own, so compare
		// with a mixed absolute/relative tolerance.
		fresh := e.Loads(st.Mapping(), nil)
		for r, l := range st.Loads() {
			if math.Abs(l-fresh[r]) > 1e-9*(1+math.Abs(fresh[r])) {
				t.Fatalf("n=%d: load[%d] drifted: %v vs recomputed %v", n, r, l, fresh[r])
			}
		}
	}
}

// TestExecAfterSwapDeltaOnPaperInstance: exact agreement on the integer-
// weight generator output.
func TestExecAfterSwapDeltaOnPaperInstance(t *testing.T) {
	rng := xrand.New(36)
	inst, err := gen.PaperInstance(4, 20, gen.DefaultPaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(e, randomPermutation(rng, 20))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		i, j := rng.Intn(20), rng.Intn(20)
		if got, want := st.ExecAfterSwap(i, j), st.execAfterSwapBySwapping(i, j); got != want {
			t.Fatalf("trial %d swap(%d,%d): delta %v != reference %v", trial, i, j, got, want)
		}
		if trial%7 == 0 {
			st.Swap(rng.Intn(20), rng.Intn(20))
		}
	}
}

func BenchmarkExecAfterSwap(b *testing.B) {
	inst, err := gen.PaperInstance(2005, 64, gen.DefaultPaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	st, err := NewState(e, randomPermutation(rng, 64))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.ExecAfterSwap(i%64, (i*7+13)%64)
		}
	})
	b.Run("swap-revert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.execAfterSwapBySwapping(i%64, (i*7+13)%64)
		}
	})
}

func BenchmarkStreamScore64(b *testing.B) {
	inst, err := gen.PaperInstance(2005, 64, gen.DefaultPaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	m := randomPermutation(rng, 64)
	ss := NewStreamScorer(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ss.Score(m); err != nil {
			b.Fatal(err)
		}
	}
}

// TestScoreMappingBitIdenticalToExec: the edge-list sweep performs the
// same float64 additions in the same order as Evaluator.Loads (co-located
// edges add an exact 0.0 through the link diagonal instead of branching),
// so with pruning disabled its score must be bit-identical to ExecInto on
// every instance — arbitrary float weights included, a strictly stronger
// guarantee than the placement-order accumulator's 1e-9 agreement.
func TestScoreMappingBitIdenticalToExec(t *testing.T) {
	rng := xrand.New(41)
	for _, n := range []int{4, 16, 64} {
		e := randomFloatInstance(t, rng, n, n)
		ss := NewStreamScorer(e)
		scratch := make([]float64, n)
		for trial := 0; trial < 100; trial++ {
			m := randomPermutation(rng, n)
			got := ss.ScoreMapping(m)
			if want := e.ExecInto(m, scratch); got != want {
				t.Fatalf("n=%d bijective trial %d: sweep %v != exec %v (must be bit-identical)", n, trial, got, want)
			}
			if ss.Pruned() {
				t.Fatalf("n=%d trial %d: pruned with gamma disabled", n, trial)
			}
		}
		r := n/2 + 1
		e2 := randomFloatInstance(t, rng, n, r)
		ss2 := NewStreamScorer(e2)
		scratch2 := make([]float64, r)
		for trial := 0; trial < 100; trial++ {
			m := randomManyToOne(rng, n, r)
			got := ss2.ScoreMapping(m)
			if want := e2.ExecInto(m, scratch2); got != want {
				t.Fatalf("n=%d many-to-one trial %d: sweep %v != exec %v", n, trial, got, want)
			}
		}
	}
}

// TestScoreMappingPruning: with a finite gamma every strictly-over-
// threshold mapping must come back as PrunedScore with the Pruned flag
// set, and every mapping at or under gamma must come back exactly — the
// same bits as the unpruned sweep, since pruning must not perturb the
// accumulation it observes.
func TestScoreMappingPruning(t *testing.T) {
	rng := xrand.New(42)
	e := randomFloatInstance(t, rng, 48, 48)
	exact := NewStreamScorer(e)
	pruned := NewStreamScorer(e)

	const trials = 200
	maps := make([]Mapping, trials)
	scores := make([]float64, trials)
	for i := range maps {
		maps[i] = randomPermutation(rng, 48)
		scores[i] = exact.ScoreMapping(maps[i])
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	gamma := sorted[trials/2] // median: both outcomes well populated

	pruned.SetGamma(gamma)
	kept, cut := 0, 0
	for i, m := range maps {
		got := pruned.ScoreMapping(m)
		if scores[i] > gamma {
			cut++
			if got != PrunedScore || !pruned.Pruned() {
				t.Fatalf("trial %d: score %v > gamma %v but not pruned (got %v)", i, scores[i], gamma, got)
			}
		} else {
			kept++
			if got != scores[i] {
				t.Fatalf("trial %d: score %v <= gamma %v must return exactly, got %v", i, scores[i], gamma, got)
			}
			if pruned.Pruned() {
				t.Fatalf("trial %d: under-threshold draw flagged pruned", i)
			}
		}
	}
	if kept == 0 || cut == 0 {
		t.Fatalf("degenerate split: %d kept, %d cut", kept, cut)
	}

	// The boundary case: gamma equal to a mapping's exact score must not
	// prune it (the test is strict >).
	for i, m := range maps {
		pruned.SetGamma(scores[i])
		if got := pruned.ScoreMapping(m); got != scores[i] {
			t.Fatalf("trial %d: gamma == score %v was pruned (got %v)", i, scores[i], got)
		}
		break
	}
}

// TestScoreMappingPrunedScoresStayExactOnRescore: a pruned draw re-scored
// with pruning disabled (the CE rescue path) recovers the exact value.
func TestScoreMappingPrunedScoresStayExactOnRescore(t *testing.T) {
	rng := xrand.New(43)
	inst, err := gen.PaperInstance(6, 32, gen.DefaultPaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamScorer(e)
	scratch := make([]float64, 32)
	for trial := 0; trial < 50; trial++ {
		m := randomPermutation(rng, 32)
		want := e.ExecInto(m, scratch)
		ss.SetGamma(want - 1) // integer weights: strictly below the score
		if got := ss.ScoreMapping(m); got != PrunedScore {
			t.Fatalf("trial %d: gamma below score did not prune (got %v)", trial, got)
		}
		ss.SetGamma(math.Inf(1))
		if got := ss.ScoreMapping(m); got != want {
			t.Fatalf("trial %d: rescore %v != exact %v", trial, got, want)
		}
	}
}
