package cost

import "fmt"

// StreamScorer accumulates the execution-time model of eqs. (1)-(2)
// *while a mapping is being constructed*: as each task is placed on a
// resource, its compute time is charged immediately and every TIG edge is
// charged exactly once — at the moment its second endpoint is placed. By
// the time the last task lands, the makespan is already known, so the
// CE sample-and-score loop never has to re-walk the whole graph (and
// refetch the TIG from memory) a second time.
//
// Place is branch-free in its edge loop. An unplaced neighbour is encoded
// as the out-of-range resource r, and the link matrix is stored padded
// with a zero column at index r, so an unplaced neighbour's edge term is
// weight*0 with no clamping or conditional at all; a co-located neighbour
// contributes zero through the link matrix's zero diagonal. Adding an
// exact 0.0 never changes a load, so the accumulated sums stay identical
// to the branchy formulation while avoiding the data-dependent branch
// mispredictions that dominate its cost on randomly drawn mappings.
//
// The accumulated makespan sums exactly the same terms as Evaluator.Exec,
// only in placement order instead of canonical order. For integer-valued
// weights (the paper's Section 5.2 generator draws all weights from small
// integer ranges) every partial sum is exact and the fused score is
// bit-identical to Evaluator.Exec; for arbitrary float weights the two
// agree to within a few ULPs (tested at 1e-9 relative).
//
// A StreamScorer holds per-goroutine scratch state: create one per worker
// (or pool them) and Reset it before each draw. Not safe for concurrent
// use.
type StreamScorer struct {
	eval *Evaluator

	// loads has r+1 entries: one per resource plus a spill slot at index
	// r that absorbs the exact-zero charges of unplaced neighbours.
	loads []float64

	// linkPad is the evaluator's link matrix laid out r rows by r+1
	// columns, the extra column all zero, so linkPad[s*(r+1)+r] == 0.
	linkPad []float64

	// placedRes[t] is the resource of task t in the current draw, or the
	// sentinel r while t is unplaced.
	placedRes []int
}

// NewStreamScorer returns a scorer for mappings evaluated by e.
func NewStreamScorer(e *Evaluator) *StreamScorer {
	ss := &StreamScorer{
		eval:      e,
		loads:     make([]float64, e.r+1),
		linkPad:   make([]float64, e.r*(e.r+1)),
		placedRes: make([]int, e.n),
	}
	for s := 0; s < e.r; s++ {
		copy(ss.linkPad[s*(e.r+1):s*(e.r+1)+e.r], e.link[s*e.r:(s+1)*e.r])
	}
	for i := range ss.placedRes {
		ss.placedRes[i] = e.r
	}
	return ss
}

// Reset prepares the scorer for a new draw.
func (ss *StreamScorer) Reset() {
	for i := range ss.loads {
		ss.loads[i] = 0
	}
	r := ss.eval.r
	for i := range ss.placedRes {
		ss.placedRes[i] = r
	}
}

// Place records that task t has been assigned to resource s, charging
// t's compute time to s and, for every already-placed neighbour, the
// edge's communication time to both endpoints' resources (eq. 1). Cost is
// O(deg(t)). Placing the same task twice in one draw is a caller bug and
// double-counts; the CE samplers assign each task exactly once.
func (ss *StreamScorer) Place(t, s int) {
	e := ss.eval
	loads := ss.loads
	placed := ss.placedRes
	r1 := e.r + 1
	linkRow := ss.linkPad[s*r1 : s*r1+r1]
	// Accumulate this resource's share in a register; a neighbour hosted
	// on s itself contributes exactly zero (the diagonal), so the single
	// write-back at the end observes the same addition order.
	ls := loads[s] + e.tcp[t*e.r+s]
	for _, nb := range e.tig.Neighbors(t) {
		b := placed[nb.To]
		// b == r (unplaced): linkRow[r] is the zero pad column, and the
		// charge lands in the loads[r] spill slot.
		c := nb.Weight * linkRow[b]
		ls += c
		loads[b] += c
	}
	loads[s] = ls
	placed[t] = s
}

// Makespan returns Exec(M) for the placements made since the last Reset:
// one O(|Vr|) scan of the accumulated loads. With every task placed it
// equals Evaluator.Exec of the same mapping (exactly so for integer-
// weight instances; see the type comment).
func (ss *StreamScorer) Makespan() float64 {
	maxLoad := 0.0
	for _, l := range ss.loads[:ss.eval.r] {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// Score is the convenience one-shot form: Reset, Place every task of m in
// index order, and return the makespan. It exists for tests and for
// callers that want the streaming accumulator's semantics without driving
// placements themselves.
func (ss *StreamScorer) Score(m Mapping) (float64, error) {
	if len(m) != ss.eval.n {
		return 0, fmt.Errorf("cost: mapping length %d for %d tasks", len(m), ss.eval.n)
	}
	if err := m.Validate(ss.eval.r); err != nil {
		return 0, err
	}
	ss.Reset()
	for t, s := range m {
		ss.Place(t, s)
	}
	return ss.Makespan(), nil
}
