package cost

import (
	"fmt"
	"math"
	"sort"
)

// StreamScorer accumulates the execution-time model of eqs. (1)-(2)
// *while a mapping is being constructed*: as each task is placed on a
// resource, its compute time is charged immediately and every TIG edge is
// charged exactly once — at the moment its second endpoint is placed. By
// the time the last task lands, the makespan is already known, so the
// CE sample-and-score loop never has to re-walk the whole graph (and
// refetch the TIG from memory) a second time.
//
// Place is branch-free in its edge loop. An unplaced neighbour is encoded
// as the out-of-range resource r, and the link matrix is stored padded
// with a zero column at index r, so an unplaced neighbour's edge term is
// weight*0 with no clamping or conditional at all; a co-located neighbour
// contributes zero through the link matrix's zero diagonal. Adding an
// exact 0.0 never changes a load, so the accumulated sums stay identical
// to the branchy formulation while avoiding the data-dependent branch
// mispredictions that dominate its cost on randomly drawn mappings.
//
// The accumulated makespan sums exactly the same terms as Evaluator.Exec,
// only in placement order instead of canonical order. For integer-valued
// weights (the paper's Section 5.2 generator draws all weights from small
// integer ranges) every partial sum is exact and the fused score is
// bit-identical to Evaluator.Exec; for arbitrary float weights the two
// agree to within a few ULPs (tested at 1e-9 relative).
//
// A StreamScorer holds per-goroutine scratch state: create one per worker
// (or pool them) and Reset it before each draw. Not safe for concurrent
// use.
//
// # Gamma pruning
//
// SetGamma installs an elite threshold: once the partial accumulation
// *proves* the final makespan must exceed it, Place stops accumulating
// (the edge scans of all remaining placements are skipped) and Makespan
// returns PrunedScore instead of the true value. Two sound tests drive
// the proof, both monotone under the model's non-negative charges:
//
//  1. Busiest-resource test: the just-placed resource's running load
//     already exceeds gamma — checked once per placement. Floating-point
//     safe as-is — later non-negative adds cannot shrink a rounded sum,
//     so the final load is >= the partial.
//  2. Remaining-work test (the LB1 relaxation of bounds.LowerBound): the
//     total charge so far plus the smallest possible compute of the
//     still-unplaced tasks, spread perfectly over all resources, exceeds
//     gamma. Guarded by a relative slack so accumulated rounding error
//     can never prune a sample whose true score ties the threshold.
//
// Both tests prove "final makespan > gamma", so a pruned sample can never
// enter an elite set thresholded at gamma; callers that need exact scores
// for pruned draws (the CE rescue path) re-score the materialised mapping.
// The zero threshold state (+Inf) disables pruning entirely.
type StreamScorer struct {
	eval *Evaluator

	// loads has r+1 entries: one per resource plus a spill slot at index
	// r that absorbs the exact-zero charges of unplaced neighbours.
	loads []float64

	// linkPad is the evaluator's link matrix laid out r rows by r+1
	// columns, the extra column all zero, so linkPad[s*(r+1)+r] == 0.
	linkPad []float64

	// placedRes[t] is the resource of task t in the current draw, or the
	// sentinel r while t is unplaced.
	placedRes []int

	// Gamma-pruning state. gamma is +Inf when pruning is disabled.
	gamma float64
	// skippedEdges is the edge-sweep work the last ScoreMapping call
	// avoided by pruning — the per-draw saving the telemetry layer
	// aggregates into a work-avoided counter.
	skippedEdges int
	pruned       bool
	placedCnt    int
	totalLoad    float64 // sum of all charges so far (compute + both comm halves)
	// minTail[k] is a lower bound on the total compute the n-k tasks still
	// unplaced after k placements must add: the sum of the n-k smallest
	// per-task minimum compute times (bounds.PerTaskMinCompute), built
	// lazily on the first SetGamma with a finite threshold.
	minTail []float64
	invR    float64
}

// PrunedScore is the pinned score Makespan reports for a draw whose true
// makespan was proven to exceed the installed gamma threshold. It compares
// worse than every real score, so pruned samples sort after all exact ones.
var PrunedScore = math.Inf(1)

// pruneSlack is the relative safety margin of the remaining-work test: the
// bound must exceed gamma by this fraction before pruning. It dominates
// the worst-case relative rounding error of the O(n^2)-term accumulation
// (~n^2 * 2^-52), so a sample whose exact score equals gamma is never
// mispruned; for the paper's integer-weight instances any true gap is
// >= 1, which the slack never masks.
const pruneSlack = 1e-9

// NewStreamScorer returns a scorer for mappings evaluated by e.
func NewStreamScorer(e *Evaluator) *StreamScorer {
	ss := &StreamScorer{
		eval:      e,
		loads:     make([]float64, e.r+1),
		linkPad:   make([]float64, e.r*(e.r+1)),
		placedRes: make([]int, e.n),
		gamma:     math.Inf(1),
		invR:      1 / float64(e.r),
	}
	for s := 0; s < e.r; s++ {
		copy(ss.linkPad[s*(e.r+1):s*(e.r+1)+e.r], e.link[s*e.r:(s+1)*e.r])
	}
	for i := range ss.placedRes {
		ss.placedRes[i] = e.r
	}
	return ss
}

// SetGamma installs the pruning threshold (see the type comment); +Inf
// disables pruning. It applies from the next Reset onwards.
func (ss *StreamScorer) SetGamma(gamma float64) {
	ss.gamma = gamma
	if !math.IsInf(gamma, 1) && ss.minTail == nil {
		minCompute := PerTaskMinCompute(ss.eval)
		sort.Float64s(minCompute)
		// minTail[k] = sum of the (n-k) smallest entries; minTail[n] = 0.
		tail := make([]float64, ss.eval.n+1)
		acc := 0.0
		for i, v := range minCompute {
			acc += v
			tail[ss.eval.n-1-i] = acc
		}
		ss.minTail = tail
	}
}

// Pruned reports whether the current draw was cut short by the gamma
// threshold.
func (ss *StreamScorer) Pruned() bool { return ss.pruned }

// SkippedEdges reports how many edge charges the last ScoreMapping call
// skipped thanks to gamma pruning (0 for unpruned draws and for draws
// pruned only by the final check).
func (ss *StreamScorer) SkippedEdges() int { return ss.skippedEdges }

// Reset prepares the scorer for a new draw. The gamma threshold persists
// across draws; only per-draw accumulation state clears.
func (ss *StreamScorer) Reset() {
	for i := range ss.loads {
		ss.loads[i] = 0
	}
	r := ss.eval.r
	for i := range ss.placedRes {
		ss.placedRes[i] = r
	}
	ss.pruned = false
	ss.placedCnt = 0
	ss.totalLoad = 0
}

// Place records that task t has been assigned to resource s, charging
// t's compute time to s and, for every already-placed neighbour, the
// edge's communication time to both endpoints' resources (eq. 1). Cost is
// O(deg(t)) — or O(1) once the draw has been gamma-pruned. Placing the
// same task twice in one draw is a caller bug and double-counts; the CE
// samplers assign each task exactly once.
func (ss *StreamScorer) Place(t, s int) {
	if ss.pruned {
		return
	}
	e := ss.eval
	loads := ss.loads
	placed := ss.placedRes
	r1 := e.r + 1
	linkRow := ss.linkPad[s*r1 : s*r1+r1]
	// Accumulate this resource's share in a register; a neighbour hosted
	// on s itself contributes exactly zero (the diagonal), so the single
	// write-back at the end observes the same addition order.
	oldLs := loads[s]
	tcp := e.tcp[t*e.r+s]
	// Two accumulators break the floating-point add dependency chain:
	// consecutive edge charges land in alternating registers, so the adds
	// overlap instead of serialising on FP latency. Each accumulator sums
	// integer-exact terms on the paper generator's instances, so the split
	// leaves those scores bit-identical; float instances stay within the
	// few-ULP envelope the type comment documents.
	ls0 := oldLs + tcp
	ls1 := 0.0
	nbs := e.tig.Neighbors(t)
	i := 0
	for ; i+1 < len(nbs); i += 2 {
		nb0, nb1 := nbs[i], nbs[i+1]
		// b == r (unplaced): linkRow[r] is the zero pad column, and
		// the charge lands in the loads[r] spill slot.
		b0 := placed[nb0.To]
		b1 := placed[nb1.To]
		c0 := nb0.Weight * linkRow[b0]
		c1 := nb1.Weight * linkRow[b1]
		ls0 += c0
		loads[b0] += c0
		ls1 += c1
		loads[b1] += c1
	}
	if i < len(nbs) {
		nb := nbs[i]
		b := placed[nb.To]
		c := nb.Weight * linkRow[b]
		ls0 += c
		loads[b] += c
	}
	ls := ls0 + ls1
	loads[s] = ls
	placed[t] = s
	gamma := ss.gamma
	if math.IsInf(gamma, 1) {
		return
	}
	ss.placedCnt++
	// Busiest-resource test on the placed resource. (Checking far
	// endpoints per edge is not worth its inner-loop branch: on the paper
	// instances loads grow near-linearly, so over-gamma draws only become
	// provably so in the last few placements either way.)
	if ls > gamma {
		ss.pruned = true
		return
	}
	// delta = compute + this task's half of the new comm charges; the
	// far halves double the comm term. Spill-slot charges are exact
	// zeros, so they do not inflate the total.
	delta := ls - oldLs
	ss.totalLoad += 2*delta - tcp
	if (ss.totalLoad+ss.minTail[ss.placedCnt])*ss.invR > gamma*(1+pruneSlack) {
		ss.pruned = true
	}
}

// Makespan returns Exec(M) for the placements made since the last Reset:
// one O(|Vr|) scan of the accumulated loads — or PrunedScore when the
// draw was gamma-pruned (the true makespan provably exceeds the
// threshold). With every task placed it equals Evaluator.Exec of the same
// mapping (exactly so for integer-weight instances; see the type comment).
func (ss *StreamScorer) Makespan() float64 {
	if ss.pruned {
		return PrunedScore
	}
	maxLoad := 0.0
	for _, l := range ss.loads[:ss.eval.r] {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// ScoreMapping scores a complete mapping in one pass: compute charges in
// task order, then a single sweep over the edge list — each edge is
// touched once, versus twice for Place's placement-order adjacency walk
// (where an edge's first visit always multiplies by the zero pad column).
// On the CE hot path the permutation is fully known by scoring time, so
// this sweep does the same floating-point additions as Evaluator.Loads in
// the same order (co-located edges add an exact 0.0 through the link
// diagonal instead of branching) and the result is bit-identical to
// ExecInto on every instance.
//
// The installed gamma threshold prunes the sweep at block granularity:
// after every pruneBlockEdges edges the current busiest load is scanned,
// and since loads only grow, a scan exceeding gamma proves the final
// makespan does — PrunedScore is returned and the remaining blocks are
// skipped. Every over-threshold mapping is caught (the last scan sees the
// final loads), the per-edge loop body carries no extra compare, and the
// accumulation is identical with pruning on or off. ScoreMapping is
// independent of the streaming Reset/Place protocol and sets only the
// Pruned flag.
func (ss *StreamScorer) ScoreMapping(m []int) float64 {
	e := ss.eval
	loads := ss.loads[:e.r]
	for i := range loads {
		loads[i] = 0
	}
	ss.pruned = false
	ss.skippedEdges = 0
	r := e.r
	for t, s := range m {
		loads[s] += e.tcp[t*r+s]
	}
	gamma := ss.gamma
	link := e.link
	edges := e.edges
	// Scans only make sense once enough charge has accumulated for a
	// crossing to be provable: on near-threshold draws (the common case —
	// gamma is an elite quantile of the same distribution) loads grow
	// roughly linearly, so crossings cluster in the sweep's tail.
	scanFrom := len(edges) - len(edges)/4
	if math.IsInf(gamma, 1) {
		scanFrom = len(edges) // never scan mid-sweep
	}
	for base := 0; base < len(edges); {
		end := base + pruneBlockEdges
		if end > len(edges) {
			end = len(edges)
		}
		for _, edge := range edges[base:end] {
			su, sv := m[edge.u], m[edge.v]
			// Co-located: the link diagonal is zero, so both adds are
			// exact no-ops — same sums as the branchy formulation.
			c := edge.w * link[su*r+sv]
			loads[su] += c
			loads[sv] += c
		}
		base = end
		if base >= scanFrom && base < len(edges) {
			if maxLoads(loads) > gamma {
				ss.pruned = true
				ss.skippedEdges = len(edges) - base
				return PrunedScore
			}
		}
	}
	maxLoad := maxLoads(loads)
	if ss.gamma < maxLoad { // false when gamma is +Inf
		ss.pruned = true
		return PrunedScore
	}
	return maxLoad
}

// pruneBlockEdges is ScoreMapping's gamma-check granularity: edges per
// block between busiest-load scans. Large enough that the O(|Vr|) scans
// add only a few percent to the sweep, small enough that a crossing near
// the end of the walk still skips some tail work.
const pruneBlockEdges = 256

// maxLoads is a branch-free four-lane max reduction: the builtin max
// lowers to hardware max instructions, and four accumulators break the
// latency chain a single running maximum would serialise every element
// behind.
func maxLoads(loads []float64) float64 {
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+3 < len(loads); i += 4 {
		m0 = max(m0, loads[i])
		m1 = max(m1, loads[i+1])
		m2 = max(m2, loads[i+2])
		m3 = max(m3, loads[i+3])
	}
	for ; i < len(loads); i++ {
		m0 = max(m0, loads[i])
	}
	return max(max(m0, m1), max(m2, m3))
}

// Score is the convenience one-shot form: Reset, Place every task of m in
// index order, and return the makespan. It exists for tests and for
// callers that want the streaming accumulator's semantics without driving
// placements themselves.
func (ss *StreamScorer) Score(m Mapping) (float64, error) {
	if len(m) != ss.eval.n {
		return 0, fmt.Errorf("cost: mapping length %d for %d tasks", len(m), ss.eval.n)
	}
	if err := m.Validate(ss.eval.r); err != nil {
		return 0, err
	}
	ss.Reset()
	for t, s := range m {
		ss.Place(t, s)
	}
	return ss.Makespan(), nil
}
