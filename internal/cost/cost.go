// Package cost implements the execution-time model of Section 2 of the
// paper — equations (1) and (2) — together with the mapping representation
// shared by every solver.
//
// For a mapping M assigning each task t to a resource M[t], the load on
// resource s is
//
//	Exec_s(M) = sum_{t: M[t]=s} W^t * w_s
//	          + sum_{t: M[t]=s} sum_{(t,a) in Et, M[a]=b != s} C^{t,a} * c_{s,b}
//
// and the application execution time is the makespan
//
//	Exec(M) = max_s Exec_s(M).
//
// Evaluator precomputes the compute-cost table Tcp[t][s] = W^t * w_s and
// evaluates mappings either from scratch (Exec / Loads) or incrementally
// (DeltaSwap and the mutation-sized DeltaMove helpers used by the local
// search baselines). The incremental path recomputes only the affected
// resources' loads, which turns a full O(n + |Et|) evaluation into an
// O(deg) update for neighbourhood moves.
package cost

import (
	"fmt"
	"math"

	"matchsim/internal/graph"
)

// Mapping assigns each task index to a resource index: Mapping[t] = s.
// The paper restricts experiments to bijective mappings (|Vt| = |Vr|,
// each resource hosts exactly one task); the evaluator itself supports
// arbitrary many-to-one mappings, which the clustering examples use.
type Mapping []int

// Clone returns a copy of m.
func (m Mapping) Clone() Mapping {
	return append(Mapping(nil), m...)
}

// IsPermutation reports whether m is a bijection onto [0, n) where
// n = len(m).
func (m Mapping) IsPermutation() bool {
	seen := make([]bool, len(m))
	for _, s := range m {
		if s < 0 || s >= len(m) || seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

// Validate checks that every assignment lands inside [0, numResources).
func (m Mapping) Validate(numResources int) error {
	for t, s := range m {
		if s < 0 || s >= numResources {
			return fmt.Errorf("cost: task %d mapped to resource %d outside [0,%d)", t, s, numResources)
		}
	}
	return nil
}

// Identity returns the identity mapping of size n (task i on resource i).
func Identity(n int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// Evaluator scores mappings of one TIG onto one platform. It is
// read-only after construction and safe for concurrent use; the CE
// engine shares one Evaluator across all worker goroutines.
type Evaluator struct {
	tig      *graph.TIG
	platform *graph.ResourceGraph
	n        int // tasks
	r        int // resources
	// tcp[t*r+s] = W^t * w_s, the processing time of task t on resource s.
	tcp []float64
	// link is the platform's dense link-cost matrix, aliased.
	link []float64
	// edges is the TIG edge list packed to 16 bytes per edge (int32
	// endpoints beside the weight): the scoring sweeps stream it once per
	// draw, so halving its footprint against graph.Edge's 24 bytes cuts
	// the cache traffic of the hottest loop in the solver.
	edges []packedEdge
}

// packedEdge is Evaluator's cache-dense copy of a TIG edge.
type packedEdge struct {
	u, v int32
	w    float64
}

// NewEvaluator builds an evaluator after validating both graphs and the
// requirement that the platform is fully linked (every resource pair has
// a finite communication cost).
func NewEvaluator(tig *graph.TIG, platform *graph.ResourceGraph) (*Evaluator, error) {
	if err := tig.Validate(); err != nil {
		return nil, fmt.Errorf("cost: invalid TIG: %w", err)
	}
	if err := platform.Validate(); err != nil {
		return nil, fmt.Errorf("cost: invalid platform: %w", err)
	}
	if !platform.FullyLinked() {
		return nil, fmt.Errorf("cost: platform %q is not fully linked; call CloseLinks first", platform.Name)
	}
	// The fused scoring path walks adjacency lists from concurrent
	// sampling workers; build the CSR arrays up front so those calls
	// never trigger the (single-threaded) lazy rebuild.
	tig.BuildAdjacency()
	n, r := tig.NumTasks(), platform.NumResources()
	e := &Evaluator{
		tig:      tig,
		platform: platform,
		n:        n,
		r:        r,
		tcp:      make([]float64, n*r),
		link:     platform.LinkMatrix(),
	}
	for t := 0; t < n; t++ {
		wt := tig.Weights[t]
		for s := 0; s < r; s++ {
			e.tcp[t*r+s] = wt * platform.Costs[s]
		}
	}
	e.edges = make([]packedEdge, 0, len(tig.Edges()))
	for _, edge := range tig.Edges() {
		e.edges = append(e.edges, packedEdge{u: int32(edge.U), v: int32(edge.V), w: edge.Weight})
	}
	return e, nil
}

// NumTasks returns |Vt|.
func (e *Evaluator) NumTasks() int { return e.n }

// NumResources returns |Vr|.
func (e *Evaluator) NumResources() int { return e.r }

// TIG returns the application graph the evaluator scores against.
func (e *Evaluator) TIG() *graph.TIG { return e.tig }

// Platform returns the resource graph the evaluator scores against.
func (e *Evaluator) Platform() *graph.ResourceGraph { return e.platform }

// ComputeTime returns Tcp[t][s] = W^t * w_s.
func (e *Evaluator) ComputeTime(t, s int) float64 { return e.tcp[t*e.r+s] }

// CommTime returns Tcm[t] for task t under mapping m: the communication
// time charged to t's resource for t's edges whose far endpoint lives on
// a different resource.
func (e *Evaluator) CommTime(t int, m Mapping) float64 {
	s := m[t]
	total := 0.0
	for _, nb := range e.tig.Neighbors(t) {
		if b := m[nb.To]; b != s {
			total += nb.Weight * e.link[s*e.r+b]
		}
	}
	return total
}

// Loads returns Exec_s for every resource under mapping m, writing into
// dst when it has capacity (dst may be nil). The per-edge communication
// cost is charged to both endpoints' resources, exactly as eq. (1) sums
// over the tasks assigned to each resource.
func (e *Evaluator) Loads(m Mapping, dst []float64) []float64 {
	if cap(dst) < e.r {
		dst = make([]float64, e.r)
	}
	dst = dst[:e.r]
	for i := range dst {
		dst[i] = 0
	}
	for t := 0; t < e.n; t++ {
		s := m[t]
		dst[s] += e.tcp[t*e.r+s]
	}
	for _, edge := range e.edges {
		su, sv := m[edge.u], m[edge.v]
		if su == sv {
			continue
		}
		c := edge.w * e.link[su*e.r+sv]
		dst[su] += c
		dst[sv] += c
	}
	return dst
}

// Exec returns the application execution time Exec(M) = max_s Exec_s(M),
// eq. (2). It avoids materialising the full load vector.
func (e *Evaluator) Exec(m Mapping) float64 {
	return e.ExecInto(m, nil)
}

// ExecInto is Exec with a caller-provided scratch buffer of length >=
// NumResources, letting hot loops avoid per-call allocation. Pass nil to
// allocate internally.
func (e *Evaluator) ExecInto(m Mapping, scratch []float64) float64 {
	loads := e.Loads(m, scratch)
	maxLoad := math.Inf(-1)
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// Breakdown decomposes one mapping's cost for reporting: per-resource
// compute and communication components, the busiest resource, and the
// imbalance ratio (max load over mean load).
type Breakdown struct {
	Compute  []float64 // per-resource processing time
	Comm     []float64 // per-resource communication time
	Loads    []float64 // Compute[i] + Comm[i]
	Exec     float64   // max load (eq. 2)
	MeanLoad float64
	// Busiest is the arg max resource.
	Busiest int
	// Imbalance = Exec / MeanLoad; 1.0 is a perfectly balanced mapping.
	Imbalance float64
}

// Explain computes the full Breakdown for mapping m.
func (e *Evaluator) Explain(m Mapping) Breakdown {
	b := Breakdown{
		Compute: make([]float64, e.r),
		Comm:    make([]float64, e.r),
		Loads:   make([]float64, e.r),
	}
	for t := 0; t < e.n; t++ {
		s := m[t]
		b.Compute[s] += e.tcp[t*e.r+s]
	}
	for _, edge := range e.tig.Edges() {
		su, sv := m[edge.U], m[edge.V]
		if su == sv {
			continue
		}
		c := edge.Weight * e.link[su*e.r+sv]
		b.Comm[su] += c
		b.Comm[sv] += c
	}
	b.Exec = math.Inf(-1)
	total := 0.0
	for s := 0; s < e.r; s++ {
		b.Loads[s] = b.Compute[s] + b.Comm[s]
		total += b.Loads[s]
		if b.Loads[s] > b.Exec {
			b.Exec = b.Loads[s]
			b.Busiest = s
		}
	}
	if e.r > 0 {
		b.MeanLoad = total / float64(e.r)
	}
	if b.MeanLoad > 0 {
		b.Imbalance = b.Exec / b.MeanLoad
	}
	return b
}
