package cost

import (
	"math"
	"testing"
	"testing/quick"

	"matchsim/internal/gen"
	"matchsim/internal/graph"
	"matchsim/internal/xrand"
)

// handInstance builds a 3-task instance small enough to score by hand.
//
// TIG: weights W = [2, 3, 4]; edges (0,1) C=10, (1,2) C=20.
// Platform: costs w = [1, 2, 3]; links all pairs: c01=1, c02=2, c12=3.
func handInstance(t *testing.T) *Evaluator {
	t.Helper()
	tig := graph.NewTIGWithWeights([]float64{2, 3, 4})
	tig.MustAddEdge(0, 1, 10)
	tig.MustAddEdge(1, 2, 20)
	r := graph.NewResourceGraphWithCosts([]float64{1, 2, 3})
	r.MustAddLink(0, 1, 1)
	r.MustAddLink(0, 2, 2)
	r.MustAddLink(1, 2, 3)
	e, err := NewEvaluator(tig, r)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExecByHand(t *testing.T) {
	e := handInstance(t)
	m := Mapping{0, 1, 2} // identity
	// Exec_0 = 2*1 + 10*c01            = 2 + 10  = 12
	// Exec_1 = 3*2 + 10*c01 + 20*c12   = 6 + 10 + 60 = 76
	// Exec_2 = 4*3 + 20*c12            = 12 + 60 = 72
	loads := e.Loads(m, nil)
	want := []float64{12, 76, 72}
	for i := range want {
		if math.Abs(loads[i]-want[i]) > 1e-12 {
			t.Fatalf("load[%d] = %v, want %v", i, loads[i], want[i])
		}
	}
	if got := e.Exec(m); got != 76 {
		t.Fatalf("Exec = %v, want 76", got)
	}
}

func TestExecByHandPermuted(t *testing.T) {
	e := handInstance(t)
	m := Mapping{2, 0, 1} // task0->r2, task1->r0, task2->r1
	// Exec_2 = 2*3 + 10*c20(=2)          = 6 + 20 = 26
	// Exec_0 = 3*1 + 10*c02(=2) + 20*c01 = 3 + 20 + 20 = 43
	// Exec_1 = 4*2 + 20*c10(=1)          = 8 + 20 = 28
	loads := e.Loads(m, nil)
	if loads[2] != 26 || loads[0] != 43 || loads[1] != 28 {
		t.Fatalf("loads = %v, want [43 28 26]", loads)
	}
	if got := e.Exec(m); got != 43 {
		t.Fatalf("Exec = %v", got)
	}
}

func TestColocatedTasksPayNoComm(t *testing.T) {
	tig := graph.NewTIGWithWeights([]float64{1, 1})
	tig.MustAddEdge(0, 1, 100)
	r := graph.NewResourceGraphWithCosts([]float64{1, 1})
	r.MustAddLink(0, 1, 5)
	e, err := NewEvaluator(tig, r)
	if err != nil {
		t.Fatal(err)
	}
	// Both tasks on resource 0: pure compute, no communication.
	if got := e.Exec(Mapping{0, 0}); got != 2 {
		t.Fatalf("co-located Exec = %v, want 2", got)
	}
	// Split: each side pays 100*5.
	if got := e.Exec(Mapping{0, 1}); got != 1+500 {
		t.Fatalf("split Exec = %v, want 501", got)
	}
}

func TestCommTime(t *testing.T) {
	e := handInstance(t)
	m := Mapping{0, 1, 2}
	if got := e.CommTime(1, m); got != 70 {
		t.Fatalf("CommTime(1) = %v, want 70", got)
	}
	if got := e.CommTime(0, m); got != 10 {
		t.Fatalf("CommTime(0) = %v, want 10", got)
	}
	// Co-locate 1 with 0: only edge (1,2) crosses.
	m2 := Mapping{0, 0, 2}
	if got := e.CommTime(1, m2); got != 20*2 {
		t.Fatalf("CommTime(1) after co-location = %v, want 40", got)
	}
}

func TestComputeTimeTable(t *testing.T) {
	e := handInstance(t)
	if got := e.ComputeTime(2, 1); got != 8 {
		t.Fatalf("Tcp[2][1] = %v, want 8", got)
	}
	if got := e.ComputeTime(0, 0); got != 2 {
		t.Fatalf("Tcp[0][0] = %v, want 2", got)
	}
}

func TestNewEvaluatorRejectsBadInputs(t *testing.T) {
	tig := graph.NewTIGWithWeights([]float64{1, 1})
	sparse := graph.NewResourceGraphWithCosts([]float64{1, 1, 1})
	sparse.MustAddLink(0, 1, 1) // resource 2 unreachable
	if _, err := NewEvaluator(tig, sparse); err == nil {
		t.Fatal("not-fully-linked platform accepted")
	}
	badTIG := graph.NewTIGWithWeights([]float64{-1})
	full := graph.NewResourceGraphWithCosts([]float64{1})
	if _, err := NewEvaluator(badTIG, full); err == nil {
		t.Fatal("negative task weight accepted")
	}
}

func TestMappingHelpers(t *testing.T) {
	m := Identity(4)
	if !m.IsPermutation() {
		t.Fatal("identity not a permutation")
	}
	if err := m.Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(3); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	c := m.Clone()
	c[0] = 2
	if m[0] != 0 {
		t.Fatal("clone aliases mapping")
	}
	if (Mapping{0, 0, 1}).IsPermutation() {
		t.Fatal("duplicate assignment reported as permutation")
	}
	if (Mapping{0, -1}).IsPermutation() {
		t.Fatal("negative assignment reported as permutation")
	}
}

func TestExplainBreakdown(t *testing.T) {
	e := handInstance(t)
	b := e.Explain(Mapping{0, 1, 2})
	if b.Exec != 76 || b.Busiest != 1 {
		t.Fatalf("Exec=%v Busiest=%d", b.Exec, b.Busiest)
	}
	for s := 0; s < 3; s++ {
		if math.Abs(b.Compute[s]+b.Comm[s]-b.Loads[s]) > 1e-12 {
			t.Fatalf("breakdown inconsistent at resource %d", s)
		}
	}
	wantMean := (12.0 + 76.0 + 72.0) / 3
	if math.Abs(b.MeanLoad-wantMean) > 1e-12 {
		t.Fatalf("MeanLoad=%v want %v", b.MeanLoad, wantMean)
	}
	if math.Abs(b.Imbalance-76/wantMean) > 1e-12 {
		t.Fatalf("Imbalance=%v", b.Imbalance)
	}
	if b.Compute[1] != 6 || b.Comm[1] != 70 {
		t.Fatalf("resource 1 split %v/%v, want 6/70", b.Compute[1], b.Comm[1])
	}
}

func TestLoadsReusesBuffer(t *testing.T) {
	e := handInstance(t)
	buf := make([]float64, 3)
	out := e.Loads(Mapping{0, 1, 2}, buf)
	if &out[0] != &buf[0] {
		t.Fatal("Loads did not reuse caller buffer")
	}
	// And stale values must be overwritten.
	buf[0] = 1e18
	out = e.Loads(Mapping{0, 1, 2}, buf)
	if out[0] != 12 {
		t.Fatalf("stale buffer leaked: %v", out[0])
	}
}

func randomEvaluator(t *testing.T, seed uint64, n int) *Evaluator {
	t.Helper()
	inst, err := gen.PaperInstance(seed, n, gen.DefaultPaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestIncrementalSwapMatchesFull(t *testing.T) {
	e := randomEvaluator(t, 11, 20)
	rng := xrand.New(99)
	m := Mapping(rng.Perm(20))
	st, err := NewState(e, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		t1, t2 := rng.Intn(20), rng.Intn(20)
		st.Swap(t1, t2)
		full := e.Exec(st.Mapping())
		if math.Abs(st.Exec()-full) > 1e-6*math.Max(1, full) {
			t.Fatalf("after swap %d: incremental %v != full %v", i, st.Exec(), full)
		}
	}
}

func TestIncrementalSetTaskMatchesFull(t *testing.T) {
	e := randomEvaluator(t, 12, 15)
	rng := xrand.New(5)
	st, err := NewState(e, Identity(15))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		st.SetTask(rng.Intn(15), rng.Intn(15))
		full := e.Exec(st.Mapping())
		if math.Abs(st.Exec()-full) > 1e-6*math.Max(1, full) {
			t.Fatalf("after move %d: incremental %v != full %v", i, st.Exec(), full)
		}
	}
}

func TestExecAfterSwapIsNonDestructive(t *testing.T) {
	e := randomEvaluator(t, 13, 12)
	st, err := NewState(e, Identity(12))
	if err != nil {
		t.Fatal(err)
	}
	before := st.Mapping().Clone()
	execBefore := st.Exec()
	probe := st.ExecAfterSwap(2, 7)
	for i := range before {
		if st.Mapping()[i] != before[i] {
			t.Fatal("ExecAfterSwap mutated the mapping")
		}
	}
	if st.Exec() != execBefore {
		t.Fatal("ExecAfterSwap changed the makespan")
	}
	st.Swap(2, 7)
	if math.Abs(st.Exec()-probe) > 1e-9 {
		t.Fatalf("probe %v disagrees with committed swap %v", probe, st.Exec())
	}
}

func TestStateRejectsBadMapping(t *testing.T) {
	e := randomEvaluator(t, 14, 5)
	if _, err := NewState(e, Mapping{0, 1}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := NewState(e, Mapping{0, 1, 2, 3, 9}); err == nil {
		t.Fatal("out-of-range mapping accepted")
	}
}

func TestRecomputeFixesDrift(t *testing.T) {
	e := randomEvaluator(t, 15, 10)
	st, err := NewState(e, Identity(10))
	if err != nil {
		t.Fatal(err)
	}
	st.loads[3] += 1000 // inject corruption
	st.Recompute()
	if math.Abs(st.Exec()-e.Exec(st.Mapping())) > 1e-9 {
		t.Fatal("Recompute did not restore consistency")
	}
}

// Property: incremental state equals full evaluation after arbitrary
// random swap sequences on random instances.
func TestIncrementalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%20)
		inst, err := gen.PaperInstance(seed, n, gen.DefaultPaperConfig())
		if err != nil {
			return false
		}
		e, err := NewEvaluator(inst.TIG, inst.Platform)
		if err != nil {
			return false
		}
		rng := xrand.New(seed ^ 0xabcdef)
		st, err := NewState(e, Mapping(rng.Perm(n)))
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			st.Swap(rng.Intn(n), rng.Intn(n))
		}
		if !st.Mapping().IsPermutation() {
			return false
		}
		full := e.Exec(st.Mapping())
		return math.Abs(st.Exec()-full) <= 1e-6*math.Max(1, full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the makespan is always at least the heaviest single task's
// compute time on its assigned resource, and at least the mean load.
func TestExecLowerBounds(t *testing.T) {
	e := randomEvaluator(t, 16, 25)
	rng := xrand.New(17)
	scratch := make([]float64, 25)
	for trial := 0; trial < 50; trial++ {
		m := Mapping(rng.Perm(25))
		exec := e.ExecInto(m, scratch)
		for task := 0; task < 25; task++ {
			if exec < e.ComputeTime(task, m[task])-1e-9 {
				t.Fatalf("Exec %v below compute time of task %d", exec, task)
			}
		}
		b := e.Explain(m)
		if exec < b.MeanLoad-1e-9 {
			t.Fatalf("Exec %v below mean load %v", exec, b.MeanLoad)
		}
		if math.Abs(b.Exec-exec) > 1e-9 {
			t.Fatalf("Explain and Exec disagree: %v vs %v", b.Exec, exec)
		}
	}
}

func BenchmarkExecFull50(b *testing.B) {
	inst, err := gen.PaperInstance(1, 50, gen.DefaultPaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		b.Fatal(err)
	}
	m := Mapping(xrand.New(2).Perm(50))
	scratch := make([]float64, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ExecInto(m, scratch)
	}
}

func BenchmarkIncrementalSwap50(b *testing.B) {
	inst, err := gen.PaperInstance(1, 50, gen.DefaultPaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		b.Fatal(err)
	}
	st, err := NewState(e, Identity(50))
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Swap(rng.Intn(50), rng.Intn(50))
	}
}
