package cost

import "sort"

// RefineOptions tunes RefineSwaps.
type RefineOptions struct {
	// MaxPasses caps the number of improvement passes; default 8.
	MaxPasses int
	// MinGain is the smallest makespan improvement worth applying;
	// default 1e-9 (absolute), guarding against float-noise swap cycles.
	MinGain float64
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.MaxPasses == 0 {
		o.MaxPasses = 8
	}
	if o.MinGain == 0 {
		o.MinGain = 1e-9
	}
	return o
}

// RefineStats reports the work one RefineSwaps call performed.
type RefineStats struct {
	// Passes run (at most MaxPasses; the last one found no swap).
	Passes int
	// Swaps applied across all passes.
	Swaps int
	// Probes is the number of ExecAfterSwap evaluations — the
	// search-effort unit comparable to solver Evaluations.
	Probes int64
}

// RefineSwaps improves a bijective mapping in place by pass-based 2-swap
// local search over the epoch-stamped ExecAfterSwap delta evaluator — the
// uncoarsening refinement kernel of the multilevel pipeline. Each pass
// probes a focused candidate set instead of all n^2/2 pairs:
//
//   - the endpoints of every TIG edge (swapping communicating tasks moves
//     communication volume between links), and
//   - the task on the busiest resource paired with every other task
//     (directly attacking the makespan's argmax term).
//
// Positive-gain candidates are applied best-gain-first, each re-validated
// against the current state before committing (earlier swaps in the pass
// invalidate later estimates). The search stops after a pass that commits
// no swap, or after MaxPasses. The makespan never increases.
func RefineSwaps(st *State, opts RefineOptions) RefineStats {
	opts = opts.withDefaults()
	var stats RefineStats
	n := st.eval.n
	if n < 2 {
		return stats
	}
	type cand struct {
		i, j int
		gain float64
	}
	cands := make([]cand, 0, len(st.eval.edges)+n)
	for pass := 0; pass < opts.MaxPasses; pass++ {
		stats.Passes++
		cur := st.Exec()

		// Busiest resource's task: bijective mappings place exactly one
		// task per resource, so a linear scan recovers it.
		busiest := 0
		for s, l := range st.loads {
			if l > st.loads[busiest] {
				busiest = s
			}
		}
		hot := -1
		for t, s := range st.mapping {
			if s == busiest {
				hot = t
				break
			}
		}

		cands = cands[:0]
		for _, e := range st.eval.edges {
			i, j := int(e.u), int(e.v)
			stats.Probes++
			if g := cur - st.ExecAfterSwap(i, j); g > opts.MinGain {
				cands = append(cands, cand{i, j, g})
			}
		}
		if hot >= 0 {
			for t := 0; t < n; t++ {
				if t == hot {
					continue
				}
				i, j := hot, t
				if i > j {
					i, j = j, i
				}
				stats.Probes++
				if g := cur - st.ExecAfterSwap(i, j); g > opts.MinGain {
					cands = append(cands, cand{i, j, g})
				}
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].gain != cands[b].gain {
				return cands[a].gain > cands[b].gain
			}
			if cands[a].i != cands[b].i {
				return cands[a].i < cands[b].i
			}
			return cands[a].j < cands[b].j
		})

		applied := 0
		for _, c := range cands {
			stats.Probes++
			if after := st.ExecAfterSwap(c.i, c.j); cur-after > opts.MinGain {
				st.Swap(c.i, c.j)
				cur = after
				applied++
				stats.Swaps++
			}
		}
		if applied == 0 {
			break
		}
	}
	return stats
}
