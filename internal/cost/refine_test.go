package cost

import (
	"testing"

	"matchsim/internal/gen"
	"matchsim/internal/xrand"
)

func refineTestState(t *testing.T, seed uint64, n int) *State {
	t.Helper()
	inst, err := gen.PaperInstance(seed, n, gen.DefaultPaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(eval, Mapping(xrand.New(seed+1).Perm(n)))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRefineSwapsNeverWorsens: across random instances and random start
// mappings, refinement must never increase the makespan, must keep the
// mapping a permutation, and the incremental state must agree with a
// from-scratch recompute afterwards.
func TestRefineSwapsNeverWorsens(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		st := refineTestState(t, seed, 32)
		before := st.Exec()
		stats := RefineSwaps(st, RefineOptions{})
		after := st.Exec()
		if after > before {
			t.Fatalf("seed %d: refinement worsened %v -> %v", seed, before, after)
		}
		if !st.Mapping().IsPermutation() {
			t.Fatalf("seed %d: refined mapping is not a permutation", seed)
		}
		if got := st.eval.Exec(st.Mapping()); got != after {
			t.Fatalf("seed %d: incremental exec %v != recomputed %v", seed, after, got)
		}
		if stats.Swaps > 0 && after >= before {
			t.Fatalf("seed %d: %d swaps applied but exec did not improve", seed, stats.Swaps)
		}
		if stats.Probes <= 0 {
			t.Fatalf("seed %d: no swap was ever probed", seed)
		}
	}
}

// TestRefineSwapsTerminatesAndRespectsCap: a one-pass cap runs exactly
// one pass; an already-refined state converges with zero further swaps.
func TestRefineSwapsTerminatesAndRespectsCap(t *testing.T) {
	st := refineTestState(t, 9, 24)
	one := RefineSwaps(st, RefineOptions{MaxPasses: 1})
	if one.Passes != 1 {
		t.Fatalf("capped run took %d passes, want 1", one.Passes)
	}
	// Run to convergence, then refine again: the second call must detect
	// the local optimum in a single swap-free pass.
	RefineSwaps(st, RefineOptions{})
	again := RefineSwaps(st, RefineOptions{})
	if again.Swaps != 0 {
		t.Fatalf("refining a local optimum applied %d swaps", again.Swaps)
	}
	if again.Passes != 1 {
		t.Fatalf("detecting convergence took %d passes, want 1", again.Passes)
	}
}

// TestRefineSwapsDeterministic: the pass is tie-broken deterministically,
// so identical states refine to identical mappings.
func TestRefineSwapsDeterministic(t *testing.T) {
	a := refineTestState(t, 21, 28)
	b := refineTestState(t, 21, 28)
	sa := RefineSwaps(a, RefineOptions{})
	sb := RefineSwaps(b, RefineOptions{})
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	ma, mb := a.Mapping(), b.Mapping()
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("mappings differ at task %d: %d vs %d", i, ma[i], mb[i])
		}
	}
}

// TestRefineSwapsImprovesBadMapping: on a deliberately inverted mapping
// (heaviest task on the most expensive resource), refinement must find
// at least one improving swap.
func TestRefineSwapsImprovesBadMapping(t *testing.T) {
	inst, err := gen.PaperInstance(4, 16, gen.DefaultPaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	// Pair heaviest tasks with costliest resources: usually far from a
	// 2-swap local optimum.
	type kv struct {
		idx int
		w   float64
	}
	tasks := make([]kv, 16)
	res := make([]kv, 16)
	for i := 0; i < 16; i++ {
		tasks[i] = kv{i, inst.TIG.Weights[i]}
		res[i] = kv{i, inst.Platform.Costs[i]}
	}
	for i := 1; i < 16; i++ { // insertion sort desc by weight / desc by cost
		for j := i; j > 0 && tasks[j].w > tasks[j-1].w; j-- {
			tasks[j], tasks[j-1] = tasks[j-1], tasks[j]
		}
		for j := i; j > 0 && res[j].w > res[j-1].w; j-- {
			res[j], res[j-1] = res[j-1], res[j]
		}
	}
	m := make([]int, 16)
	for i := range m {
		m[tasks[i].idx] = res[i].idx
	}
	st, err := NewState(eval, Mapping(m))
	if err != nil {
		t.Fatal(err)
	}
	before := st.Exec()
	stats := RefineSwaps(st, RefineOptions{})
	if stats.Swaps == 0 || st.Exec() >= before {
		t.Fatalf("no improvement on an adversarial mapping: %v -> %v (%d swaps)",
			before, st.Exec(), stats.Swaps)
	}
}
