package cost

import (
	"math"
	"strings"
	"testing"

	"matchsim/internal/graph"
)

// Edge cases for the cost kernels: degenerate graphs that the random
// instance generators never produce but the public constructors allow.

func TestSelfLoopEdgesAreRejected(t *testing.T) {
	tig := graph.NewTIGWithWeights([]float64{1, 2})
	err := tig.AddEdge(1, 1, 5)
	if err == nil {
		t.Fatal("AddEdge accepted a self-loop")
	}
	if !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("self-loop error %q does not say so", err)
	}
	if tig.M() != 0 {
		t.Fatalf("rejected edge was stored: M = %d", tig.M())
	}
}

func TestZeroWeightTasksAreCommOnly(t *testing.T) {
	// All compute weights zero: Exec is pure communication.
	tig := graph.NewTIGWithWeights([]float64{0, 0, 0})
	tig.MustAddEdge(0, 1, 10)
	tig.MustAddEdge(1, 2, 20)
	r := graph.NewResourceGraphWithCosts([]float64{1, 2, 3})
	r.MustAddLink(0, 1, 1)
	r.MustAddLink(0, 2, 2)
	r.MustAddLink(1, 2, 3)
	e, err := NewEvaluator(tig, r)
	if err != nil {
		t.Fatal(err)
	}
	// Identity mapping: load_0 = 10*c01 = 10, load_1 = 10 + 20*c12 = 70,
	// load_2 = 60.
	if got := e.Exec(Mapping{0, 1, 2}); got != 70 {
		t.Fatalf("comm-only Exec = %v, want 70", got)
	}
	// Co-located: nothing to compute, nothing to send.
	if got := e.Exec(Mapping{0, 0, 0}); got != 0 {
		t.Fatalf("co-located zero-weight Exec = %v, want 0", got)
	}
	ss := NewStreamScorer(e)
	if got := ss.ScoreMapping([]int{0, 0, 0}); got != 0 {
		t.Fatalf("ScoreMapping = %v, want 0", got)
	}
	// An isolated zero-weight task contributes nothing anywhere.
	st, err := NewState(e, Mapping{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Exec(); got != 70 {
		t.Fatalf("State Exec = %v, want 70", got)
	}
}

func TestSingleTaskGraph(t *testing.T) {
	// One task, three resources: Exec is just W * cost of the chosen
	// resource, through every scoring path.
	tig := graph.NewTIGWithWeights([]float64{5})
	r := graph.NewResourceGraphWithCosts([]float64{2, 3, 7})
	r.MustAddLink(0, 1, 1)
	r.MustAddLink(0, 2, 1)
	r.MustAddLink(1, 2, 1)
	e, err := NewEvaluator(tig, r)
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamScorer(e)
	for rs, want := range []float64{10, 15, 35} {
		m := Mapping{rs}
		if got := e.Exec(m); got != want {
			t.Fatalf("Exec on resource %d = %v, want %v", rs, got, want)
		}
		if got := ss.ScoreMapping(m); got != want {
			t.Fatalf("ScoreMapping on resource %d = %v, want %v", rs, got, want)
		}
		got, err := ss.Score(m)
		if err != nil {
			t.Fatalf("Score: %v", err)
		}
		if got != want {
			t.Fatalf("Score on resource %d = %v, want %v", rs, got, want)
		}
		st, err := NewState(e, m)
		if err != nil {
			t.Fatalf("NewState: %v", err)
		}
		if got := st.Exec(); got != want {
			t.Fatalf("State Exec on resource %d = %v, want %v", rs, got, want)
		}
	}
	// Gamma pruning on a single task still tells the truth.
	ss.SetGamma(12)
	if got := ss.ScoreMapping(Mapping{0}); got != 10 {
		t.Fatalf("unpruned single-task score = %v, want 10", got)
	}
	if got := ss.ScoreMapping(Mapping{2}); got != PrunedScore && got != 35 {
		t.Fatalf("single-task score above gamma = %v, want pruned or 35", got)
	}
}

func TestTrueNOneInstance(t *testing.T) {
	// 1 task on 1 resource: the smallest instance the model admits.
	tig := graph.NewTIGWithWeights([]float64{4})
	r := graph.NewResourceGraphWithCosts([]float64{3})
	e, err := NewEvaluator(tig, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Exec(Mapping{0}); got != 12 {
		t.Fatalf("n=1 Exec = %v, want 12", got)
	}
	ss := NewStreamScorer(e)
	if got := ss.ScoreMapping([]int{0}); got != 12 {
		t.Fatalf("n=1 ScoreMapping = %v, want 12", got)
	}
	st, err := NewState(e, Mapping{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Exec(); got != 12 {
		t.Fatalf("n=1 State Exec = %v, want 12", got)
	}
	if got := st.ExecAfterSwap(0, 0); got != 12 {
		t.Fatalf("n=1 ExecAfterSwap = %v, want 12", got)
	}
}

func TestIsolatedTasksIgnoreLinkCosts(t *testing.T) {
	// No edges at all: link costs are irrelevant, Exec = max W*cost.
	tig := graph.NewTIGWithWeights([]float64{2, 8, 3})
	r := graph.NewResourceGraphWithCosts([]float64{1, 1, 1})
	r.MustAddLink(0, 1, math.MaxFloat64)
	r.MustAddLink(0, 2, math.MaxFloat64)
	r.MustAddLink(1, 2, math.MaxFloat64)
	e, err := NewEvaluator(tig, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Exec(Mapping{0, 1, 2}); got != 8 {
		t.Fatalf("edgeless Exec = %v, want 8", got)
	}
	if got := NewStreamScorer(e).ScoreMapping([]int{2, 1, 0}); got != 8 {
		t.Fatalf("edgeless ScoreMapping = %v, want 8", got)
	}
}
