package cost

import (
	"math"
	"testing"
	"testing/quick"

	"matchsim/internal/gen"
	"matchsim/internal/graph"
	"matchsim/internal/xrand"
)

func TestLowerBoundHandInstance(t *testing.T) {
	e := handInstance(t)
	// minCompute: task0 = 2*1 = 2, task1 = 3*1 = 3, task2 = 4*1 = 4.
	// LB1 = (2+3+4)/3 = 3. LB2 = 4.
	// cMin = 1 (link 0-1). Edges: (0,1) C=10 -> 10*1 + max(2,3) = 13;
	// (1,2) C=20 -> 20*1 + max(3,4) = 24. LB3 = 24.
	if got := LowerBound(e); got != 24 {
		t.Fatalf("LowerBound = %v, want 24", got)
	}
	// Many-to-one drops the edge bound: max(3, 4) = 4.
	if got := ManyToOneLowerBound(e); got != 4 {
		t.Fatalf("ManyToOneLowerBound = %v, want 4", got)
	}
}

func TestLowerBoundNeverExceedsAnyMapping(t *testing.T) {
	e := randomEvaluator(t, 31, 15)
	lb := LowerBound(e)
	rng := xrand.New(4)
	for trial := 0; trial < 300; trial++ {
		m := Mapping(rng.Perm(15))
		if exec := e.Exec(m); exec < lb-1e-9 {
			t.Fatalf("mapping beats the lower bound: %v < %v", exec, lb)
		}
	}
}

func TestLowerBoundTightOnDecoupledInstance(t *testing.T) {
	// No communication, homogeneous platform: every mapping costs
	// max W^t * w and the bound must be exact.
	tig := graph.NewTIGWithWeights([]float64{2, 5, 3})
	r := graph.NewResourceGraphWithCosts([]float64{2, 2, 2})
	r.MustAddLink(0, 1, 1)
	r.MustAddLink(1, 2, 1)
	r.MustAddLink(0, 2, 1)
	e, err := NewEvaluator(tig, r)
	if err != nil {
		t.Fatal(err)
	}
	lb := LowerBound(e)
	if exec := e.Exec(Mapping{0, 1, 2}); math.Abs(exec-lb) > 1e-12 {
		t.Fatalf("bound %v not tight: exec %v", lb, exec)
	}
}

func TestLowerBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 3 + int(seed%12)
		inst, err := gen.PaperInstance(seed, n, gen.DefaultPaperConfig())
		if err != nil {
			return false
		}
		e, err := NewEvaluator(inst.TIG, inst.Platform)
		if err != nil {
			return false
		}
		lb := LowerBound(e)
		m2oLB := ManyToOneLowerBound(e)
		if m2oLB > lb+1e-9 {
			return false // the bijective bound dominates the relaxed one
		}
		rng := xrand.New(seed ^ 0xbeef)
		for i := 0; i < 30; i++ {
			m := Mapping(rng.Perm(n))
			if e.Exec(m) < lb-1e-9 {
				return false
			}
		}
		return lb > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundEmptyAndSingle(t *testing.T) {
	tig := graph.NewTIGWithWeights([]float64{5})
	r := graph.NewResourceGraphWithCosts([]float64{3})
	e, err := NewEvaluator(tig, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := LowerBound(e); got != 15 {
		t.Fatalf("single-task bound %v, want 15", got)
	}
	empty, err := NewEvaluator(graph.NewTIG(0), graph.NewResourceGraphWithCosts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := LowerBound(empty); got != 0 {
		t.Fatalf("empty bound %v", got)
	}
}
