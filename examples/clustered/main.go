// Clustered-grid scenario: mapping a data-parallel application onto a
// federation of homogeneous clusters joined by expensive wide-area links
// — the computational-grid setting (NASA IPG-style) the paper's
// introduction motivates.
//
// The example shows why communication-aware mapping matters on such
// platforms: MaTCH places heavily interacting tasks inside the same
// cluster, while a random mapping scatters them across wide-area links.
// It also demonstrates the many-to-one generalisation: consolidating the
// application onto half the resources.
//
// Run with:
//
//	go run ./examples/clustered
package main

import (
	"fmt"
	"log"
	"time"

	"matchsim"
)

func main() {
	// 4 clusters x 6 resources: cheap intra-cluster links (cost 1-2),
	// expensive wide-area links (cost 50-60).
	problem, err := matchsim.GenerateClustered(21, matchsim.ClusteredPlatformConfig{
		Clusters:   4,
		PerCluster: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := problem.NumTasks()
	fmt.Printf("application: %d tasks; platform: 4 clusters x 6 resources\n\n", n)

	random, err := matchsim.SolveRandom(problem, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random placement:      ET = %10.0f units\n", random.Exec)

	greedy, err := matchsim.SolveGreedy(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy construction:   ET = %10.0f units\n", greedy.Exec)

	match, err := matchsim.SolveMaTCH(problem, matchsim.MaTCHOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MaTCH:                 ET = %10.0f units  (%v, %d iterations)\n",
		match.Exec, match.MappingTime.Round(time.Millisecond), match.Iterations)
	fmt.Printf("MaTCH improvement over random placement: %.1fx\n\n", random.Exec/match.Exec)

	// How cluster-aware is the MaTCH mapping? Count task interactions
	// that stay inside one cluster.
	breakdown, err := problem.Explain(match.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("busiest resource %d, imbalance %.2f\n", breakdown.Busiest, breakdown.Imbalance)

	// Many-to-one: consolidate the same application onto a single
	// cluster's worth of resources (first 6), letting several tasks
	// share a machine. This exercises the paper's sketched |Vt| != |Vr|
	// generalisation.
	small := matchsim.NewPlatform(firstK(6, 1.0))
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			if err := small.AddLink(a, b, 1.5); err != nil {
				log.Fatal(err)
			}
		}
	}
	tasksOnly := matchsim.NewTaskGraph(firstK(24, 5))
	for i := 0; i < 23; i++ {
		if err := tasksOnly.AddInteraction(i, i+1, 60); err != nil {
			log.Fatal(err)
		}
	}
	p2, err := matchsim.NewProblem(tasksOnly, small)
	if err != nil {
		log.Fatal(err)
	}
	m2o, err := matchsim.SolveMaTCHManyToOne(p2, matchsim.MaTCHOptions{Seed: 2, MaxIterations: 200})
	if err != nil {
		log.Fatal(err)
	}
	perResource := make([]int, 6)
	for _, r := range m2o.Mapping {
		perResource[r]++
	}
	fmt.Printf("\nmany-to-one consolidation onto 6 resources: ET = %.0f units\n", m2o.Exec)
	fmt.Printf("tasks per resource: %v (chain neighbours co-located where it pays)\n", perResource)
}

// firstK returns a k-element slice filled with v.
func firstK(k int, v float64) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = v
	}
	return out
}
