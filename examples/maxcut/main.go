// Max-cut via the generic Cross-Entropy framework: evidence that the CE
// engine underneath MaTCH is problem-agnostic, on the very problem
// Rubinstein used to introduce CE for combinatorial optimisation (cited
// by the paper as prior CE work).
//
// A random weighted graph with a planted heavy bipartition is generated;
// the CE method with a Bernoulli parameter vector must recover a cut at
// least as heavy as the planted one.
//
// Run with:
//
//	go run ./examples/maxcut
package main

import (
	"fmt"
	"log"

	"matchsim/internal/ce"
	"matchsim/internal/xrand"
)

func main() {
	const n = 40
	rng := xrand.New(11)

	// Planted cut: vertices [0, n/2) vs [n/2, n). Cross edges heavy,
	// intra edges light.
	planted := make([]bool, n)
	for i := n / 2; i < n; i++ {
		planted[i] = true
	}
	var edges []ce.CutEdge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			switch {
			case planted[u] != planted[v] && rng.Bool(0.7):
				edges = append(edges, ce.CutEdge{U: u, V: v, Weight: 5 + 5*rng.Float64()})
			case planted[u] == planted[v] && rng.Bool(0.3):
				edges = append(edges, ce.CutEdge{U: u, V: v, Weight: rng.Float64()})
			}
		}
	}
	score := ce.MaxCutScore(edges)
	fmt.Printf("graph: %d vertices, %d edges; planted cut value %.1f\n",
		n, len(edges), score(planted))

	problem, err := ce.NewBernoulliProblem(n, score)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ce.Run[[]bool](problem, ce.Config{
		SampleSize: 1200,
		Rho:        0.1,
		Zeta:       0.7,
		Seed:       3,
		OnIteration: func(st ce.IterStats) {
			fmt.Printf("  iter %2d: gamma=%7.1f best=%7.1f best-so-far=%7.1f\n",
				st.Iter, st.Gamma, st.Best, st.BestSoFar)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nCE best cut: %.1f after %d iterations (%d evaluations, stop: %s)\n",
		res.BestScore, res.Iterations, res.Evaluations, res.StopReason)
	left, right := 0, 0
	for _, side := range res.Best {
		if side {
			right++
		} else {
			left++
		}
	}
	fmt.Printf("partition sizes: %d / %d\n", left, right)
	if res.BestScore >= score(planted) {
		fmt.Println("CE recovered a cut at least as heavy as the planted optimum.")
	}
}
