// FastMap workflow: the authors' hierarchical strategy for applications
// with far more tasks than the platform has resources. A 60-grid overset
// application is coarsened to 8 clusters by heavy-edge contraction, the
// cluster graph is mapped with MaTCH, and the expanded mapping is then
// *executed* on the discrete-event simulator to validate that the
// analytic cost model's ET prediction holds up in an actual
// bulk-synchronous run.
//
// Run with:
//
//	go run ./examples/fastmap
package main

import (
	"fmt"
	"log"
	"time"

	"matchsim"
	"matchsim/internal/gen"
	"matchsim/internal/overset"
	"matchsim/internal/xrand"
)

func main() {
	const (
		tasks     = 60
		resources = 8
	)

	// Build the application: a 60-grid overset system.
	sys, err := overset.Generate(17, overset.Config{NumGrids: tasks})
	if err != nil {
		log.Fatal(err)
	}
	tigGraph, err := sys.TIG(1e-3)
	if err != nil {
		log.Fatal(err)
	}
	tg := matchsim.NewTaskGraph(tigGraph.Weights)
	for _, e := range tigGraph.Edges() {
		if err := tg.AddInteraction(e.U, e.V, e.Weight); err != nil {
			log.Fatal(err)
		}
	}

	// Build the platform: an 8-node heterogeneous grid.
	platform, err := gen.PaperPlatform(xrand.New(18), resources, gen.DefaultPaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	pf := matchsim.NewPlatform(platform.Costs)
	for _, e := range platform.Edges() {
		if err := pf.AddLink(e.U, e.V, e.Weight); err != nil {
			log.Fatal(err)
		}
	}
	problem, err := matchsim.NewProblem(tg, pf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %d overset grids, %d overlap edges\n",
		problem.NumTasks(), tigGraph.M())
	fmt.Printf("platform:    %d heterogeneous resources\n\n", problem.NumResources())

	// Hierarchical MaTCH: coarsen to 8 clusters, map clusters.
	hier, err := matchsim.SolveHierarchical(problem, matchsim.MaTCHOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchical MaTCH: ET = %.0f units (cluster-graph ET %.0f, %v)\n",
		hier.Exec, hier.ClusterExec, hier.MappingTime.Round(time.Millisecond))

	// Direct many-to-one MaTCH on the full 60x8 matrix, for contrast.
	direct, err := matchsim.SolveMaTCHManyToOne(problem, matchsim.MaTCHOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct many-to-one: ET = %.0f units (%v)\n\n",
		direct.Exec, direct.MappingTime.Round(time.Millisecond))

	// Cluster occupancy of the hierarchical mapping.
	perResource := make([]int, resources)
	for _, r := range hier.Mapping {
		perResource[r]++
	}
	fmt.Printf("tasks per resource (hierarchical): %v\n\n", perResource)

	// Execute the better mapping on the discrete-event simulator.
	best := hier
	if direct.Exec < hier.Exec {
		best = &matchsim.HierarchicalSolution{Solution: *direct}
	}
	const supersteps = 5
	rep, err := matchsim.Simulate(problem, best.Mapping, supersteps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d supersteps with %s mapping:\n", supersteps, best.Solver)
	fmt.Printf("  analytic ET per step:  %10.0f units\n", rep.AnalyticExec)
	fmt.Printf("  simulated step time:   %10.0f units (model ratio %.3f)\n",
		rep.PerStep[0], rep.ModelRatio)
	fmt.Printf("  total makespan:        %10.0f units over %d events\n", rep.Makespan, rep.Events)
	busiest, maxBusy := 0, 0.0
	for s, bt := range rep.BusyTime {
		if bt > maxBusy {
			busiest, maxBusy = s, bt
		}
	}
	fmt.Printf("  busiest resource:      %d (busy %.0f, idle %.0f)\n",
		busiest, rep.BusyTime[busiest], rep.IdleTime[busiest])
}
