// ANOVA: reproduce the paper's Table 3 statistical protocol at reduced
// budget — 12 independent runs of MaTCH and two FastMap-GA
// configurations on one 10-node instance, followed by a one-way ANOVA
// testing whether the heuristics' mean execution times differ
// significantly.
//
// Run with:
//
//	go run ./examples/anova
package main

import (
	"fmt"
	"log"
	"os"

	"matchsim/internal/core"
	"matchsim/internal/exp"
	"matchsim/internal/ga"
)

func main() {
	res, err := exp.RunANOVA(exp.ANOVAConfig{
		Size:       10,
		Runs:       12, // the paper uses 30; reduced to keep the example quick
		Seed:       2005,
		GASmallPop: ga.Options{PopulationSize: 100, Generations: 1000},
		GALargePop: ga.Options{PopulationSize: 500, Generations: 200},
		MaTCH:      core.Options{},
		Progress:   os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}

	desc, an := exp.RenderTable3(res)
	fmt.Println(desc.Render())
	fmt.Println(an.Render())

	if res.ANOVA.F > 1 && res.ANOVA.P < 0.05 {
		fmt.Printf("F = %.1f >> 1 with p = %.2g: the difference between MaTCH and the GA arms is significant,\n",
			res.ANOVA.F, res.ANOVA.P)
		fmt.Println("matching the paper's Table 3 conclusion.")
	} else {
		fmt.Printf("F = %.2f, p = %.3f: no significant difference at this budget.\n",
			res.ANOVA.F, res.ANOVA.P)
	}
}
