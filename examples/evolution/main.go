// Evolution: watch MaTCH's stochastic matrix converge from the uniform
// distribution to a degenerate permutation matrix — the live version of
// the paper's Figure 3 — while the elite threshold gamma_k and the best
// execution time tighten.
//
// Run with:
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"

	"matchsim/internal/core"
	"matchsim/internal/cost"
	"matchsim/internal/gen"
)

func main() {
	const n = 10

	inst, err := gen.PaperInstance(2005, n, gen.DefaultPaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	eval, err := cost.NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d tasks (%d interactions) on %d resources\n\n",
		inst.TIG.N(), inst.TIG.M(), inst.Platform.N())

	res, err := core.Solve(eval, core.Options{
		Seed:          1,
		SnapshotEvery: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("stochastic matrix evolution (rows = tasks, cols = resources; darker = higher probability):")
	for _, snap := range res.Snapshots {
		fmt.Printf("\n--- iteration %d (mean row entropy %.3f nats) ---\n",
			snap.Iter, snap.Matrix.MeanEntropy())
		fmt.Print(snap.Matrix.Heatmap())
	}

	fmt.Printf("\nconvergence trace (gamma_k = elite threshold):\n")
	step := len(res.History) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.History); i += step {
		st := res.History[i]
		fmt.Printf("  iter %3d: gamma=%8.0f  best=%8.0f  mean=%8.0f\n",
			st.Iter, st.Gamma, st.Best, st.Mean)
	}

	fmt.Printf("\nstopped after %d iterations (%s)\n", res.Iterations, res.StopReason)
	fmt.Printf("best mapping: %v\n", res.Mapping)
	fmt.Printf("execution time: %.0f units; mapping time: %v\n", res.Exec, res.MappingTime)

	// The converged matrix should encode (nearly) the same mapping as
	// the best sample.
	argmax := res.FinalMatrix.ArgmaxAssignment()
	agree := 0
	for i := range argmax {
		if argmax[i] == res.Mapping[i] {
			agree++
		}
	}
	fmt.Printf("matrix argmax agrees with best mapping on %d/%d tasks\n", agree, n)
}
