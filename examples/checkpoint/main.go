// Checkpoint/resume and run tracing: operational features for long
// mapping jobs. A MaTCH run on a 30-node instance is deliberately
// interrupted after a few iterations, checkpointed to JSON, and resumed
// to convergence; both phases stream JSONL traces that are then replayed
// and compared.
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"

	"matchsim/internal/ce"
	"matchsim/internal/core"
	"matchsim/internal/cost"
	"matchsim/internal/gen"
	"matchsim/internal/trace"
)

func main() {
	inst, err := gen.PaperInstance(2005, 30, gen.DefaultPaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	eval, err := cost.NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		log.Fatal(err)
	}

	var traceBuf bytes.Buffer
	tw := trace.NewWriter(&traceBuf)

	// Phase 1: run five iterations, then "lose the machine".
	tw.Start("MaTCH", 30, 1)
	phase1, err := core.Solve(eval, core.Options{
		Seed: 1, MaxIterations: 5, GammaStallWindow: 1000,
		OnIteration: func(st ce.IterStats) {
			tw.Iteration(trace.Event{Iter: st.Iter, Gamma: st.Gamma, Best: st.Best, Mean: st.Mean, BestSoFar: st.BestSoFar})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 (interrupted after %d iterations): best ET %.0f\n",
		phase1.Iterations, phase1.Exec)

	// Checkpoint to bytes (in production: a file).
	cp := core.CheckpointFrom(phase1)
	blob, err := cp.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes (matrix %dx%d, incumbent %.0f)\n",
		len(blob), cp.Matrix.Rows(), cp.Matrix.Cols(), cp.BestExec)

	// Phase 2: decode and resume to convergence.
	restored, err := core.DecodeCheckpoint(blob)
	if err != nil {
		log.Fatal(err)
	}
	phase2, err := core.Resume(eval, restored, core.Options{
		Seed: 2, MaxIterations: 500,
		OnIteration: func(st ce.IterStats) {
			tw.Iteration(trace.Event{Iter: st.Iter, Gamma: st.Gamma, Best: st.Best, Mean: st.Mean, BestSoFar: st.BestSoFar})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	tw.End(phase2.Exec, phase2.Iterations, phase2.Evaluations, phase2.MappingTime, string(phase2.StopReason))
	tw.Flush()
	fmt.Printf("phase 2 (resumed): %d more iterations, final ET %.0f (%s)\n",
		phase2.Iterations, phase2.Exec, phase2.StopReason)

	// Replay the combined trace.
	runs, err := trace.Read(&traceBuf)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, r := range runs {
		total += len(r.Iterations)
	}
	fmt.Printf("trace replay: %d run record(s), %d iteration events\n", len(runs), total)

	// Sanity: the resumed run can only improve on the checkpoint.
	if phase2.Exec <= phase1.Exec {
		fmt.Println("resume preserved all progress — no work was lost.")
	}
}
