// Quickstart: build a small mapping problem by hand, solve it with MaTCH
// and with the FastMap-GA baseline, and compare the mappings.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"matchsim"
)

func main() {
	// The application: six interacting tasks. Weights are computational
	// volumes (think grid points in an overset CFD grid); interactions
	// carry the data volume exchanged per step.
	tasks := matchsim.NewTaskGraph([]float64{8, 3, 5, 9, 2, 6})
	tasks.SetName("quickstart-app")
	interactions := []struct {
		a, b   int
		volume float64
	}{
		{0, 1, 90}, {0, 2, 60}, {1, 2, 75},
		{2, 3, 95}, {3, 4, 55}, {4, 5, 80}, {3, 5, 70},
	}
	for _, e := range interactions {
		if err := tasks.AddInteraction(e.a, e.b, e.volume); err != nil {
			log.Fatal(err)
		}
	}

	// The platform: six heterogeneous resources. Processing cost is per
	// unit of computation (bigger = slower machine); link cost is per
	// unit of data (bigger = slower connection). Missing links are
	// closed over cheapest routes automatically.
	platform := matchsim.NewPlatform([]float64{1, 1, 2, 3, 2, 5})
	platform.SetName("quickstart-platform")
	links := []struct {
		a, b int
		cost float64
	}{
		{0, 1, 10}, {1, 2, 12}, {2, 3, 18},
		{3, 4, 11}, {4, 5, 15}, {0, 5, 20}, {1, 4, 13},
	}
	for _, l := range links {
		if err := platform.AddLink(l.a, l.b, l.cost); err != nil {
			log.Fatal(err)
		}
	}

	problem, err := matchsim.NewProblem(tasks, platform)
	if err != nil {
		log.Fatal(err)
	}

	// A naive mapping to anchor expectations: task i on resource i.
	identity := []int{0, 1, 2, 3, 4, 5}
	naiveExec, err := problem.Exec(identity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identity mapping:  ET = %8.0f units\n", naiveExec)

	// MaTCH — the paper's cross-entropy heuristic.
	match, err := matchsim.SolveMaTCH(problem, matchsim.MaTCHOptions{
		Seed:       1,
		SampleSize: 500, // generous for a 6-task toy; defaults to 2n^2
		Rho:        0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MaTCH:             ET = %8.0f units  (%d iterations, %v)\n",
		match.Exec, match.Iterations, match.MappingTime.Round(time.Millisecond))

	// FastMap-GA — the paper's baseline.
	gaSol, err := matchsim.SolveGA(problem, matchsim.GAOptions{
		PopulationSize: 100,
		Generations:    200,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FastMap-GA:        ET = %8.0f units  (%d generations, %v)\n",
		gaSol.Exec, gaSol.Iterations, gaSol.MappingTime.Round(time.Millisecond))

	fmt.Printf("\nMaTCH mapping (task -> resource): %v\n", match.Mapping)
	breakdown, err := problem.Explain(match.Mapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("busiest resource: %d (imbalance %.2f)\n", breakdown.Busiest, breakdown.Imbalance)
	for s, load := range breakdown.Loads {
		fmt.Printf("  resource %d: load %7.0f (compute %5.0f + comm %7.0f)\n",
			s, load, breakdown.Compute[s], breakdown.Comm[s])
	}
	if match.Exec <= gaSol.Exec && match.Exec <= naiveExec {
		fmt.Println("\nMaTCH found the best mapping of the three — as the paper predicts.")
	}
}
