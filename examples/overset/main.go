// Overset-grid CFD scenario: the workload class the paper's introduction
// motivates. A synthetic 3-D body is covered by overlapping component
// grids (the overset-grid method used for viscous-drag estimation); the
// overlap structure becomes the Task Interaction Graph, which is then
// mapped onto a heterogeneous 24-node computational grid with MaTCH and
// with every baseline in the repository.
//
// Run with:
//
//	go run ./examples/overset
package main

import (
	"fmt"
	"log"
	"time"

	"matchsim"
)

func main() {
	const grids = 24

	problem, err := matchsim.GenerateOverset(7, matchsim.OversetConfig{
		NumGrids: grids,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overset system: %d component grids on a %d-resource platform\n\n",
		problem.NumTasks(), problem.NumResources())

	type entry struct {
		name  string
		solve func() (*matchsim.Solution, error)
	}
	solvers := []entry{
		{"MaTCH (CE heuristic)", func() (*matchsim.Solution, error) {
			return matchsim.SolveMaTCH(problem, matchsim.MaTCHOptions{Seed: 1})
		}},
		{"MaTCH distributed (4 agents)", func() (*matchsim.Solution, error) {
			return matchsim.SolveDistributed(problem, matchsim.DistributedOptions{Seed: 1, NumAgents: 4})
		}},
		{"FastMap-GA 500/1000", func() (*matchsim.Solution, error) {
			return matchsim.SolveGA(problem, matchsim.GAOptions{Seed: 1})
		}},
		{"Random search (50k draws)", func() (*matchsim.Solution, error) {
			return matchsim.SolveRandom(problem, 50000, 1)
		}},
		{"Greedy construction", func() (*matchsim.Solution, error) {
			return matchsim.SolveGreedy(problem)
		}},
		{"2-swap local search (x10)", func() (*matchsim.Solution, error) {
			return matchsim.SolveLocalSearch(problem, 10, 1)
		}},
		{"Simulated annealing", func() (*matchsim.Solution, error) {
			return matchsim.SolveAnnealing(problem, matchsim.AnnealingOptions{Seed: 1})
		}},
	}

	fmt.Printf("%-30s %12s %12s %12s\n", "solver", "ET (units)", "MT", "evals")
	fmt.Println("----------------------------------------------------------------------")
	best, bestName := 0.0, ""
	for _, s := range solvers {
		sol, err := s.solve()
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Printf("%-30s %12.0f %12v %12d\n",
			s.name, sol.Exec, sol.MappingTime.Round(time.Millisecond), sol.Evaluations)
		if bestName == "" || sol.Exec < best {
			best, bestName = sol.Exec, s.name
		}
	}
	fmt.Printf("\nbest mapping: %s (ET = %.0f units)\n", bestName, best)
}
