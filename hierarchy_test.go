package matchsim

import (
	"math"
	"testing"
)

// bigOnSmall builds a 36-task application on a 6-resource platform.
func bigOnSmall(t *testing.T) *Problem {
	t.Helper()
	weights := make([]float64, 36)
	for i := range weights {
		weights[i] = 1 + float64(i%5)
	}
	tg := NewTaskGraph(weights)
	// Six 6-task cliques with heavy internal chatter, light bridges.
	for c := 0; c < 6; c++ {
		base := c * 6
		for a := 0; a < 6; a++ {
			for b := a + 1; b < 6; b++ {
				if err := tg.AddInteraction(base+a, base+b, 90); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for c := 0; c < 5; c++ {
		if err := tg.AddInteraction(c*6, (c+1)*6, 2); err != nil {
			t.Fatal(err)
		}
	}
	pf := NewPlatform([]float64{1, 1, 2, 2, 3, 3})
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			if err := pf.AddLink(a, b, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	p, err := NewProblem(tg, pf)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveHierarchicalClustersChatter(t *testing.T) {
	p := bigOnSmall(t)
	sol, err := SolveHierarchical(p, MaTCHOptions{Seed: 1, MaxIterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Mapping) != 36 || len(sol.Cluster) != 36 {
		t.Fatalf("result shape: %d/%d", len(sol.Mapping), len(sol.Cluster))
	}
	// The heavy cliques must be co-located: every clique one resource.
	for c := 0; c < 6; c++ {
		base := c * 6
		for k := 1; k < 6; k++ {
			if sol.Mapping[base+k] != sol.Mapping[base] {
				t.Fatalf("clique %d split across resources: %v", c, sol.Mapping[base:base+6])
			}
		}
	}
	// Exec consistency.
	recomputed, err := p.Exec(sol.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recomputed-sol.Exec) > 1e-9 {
		t.Fatalf("exec %v vs recomputed %v", sol.Exec, recomputed)
	}
	if sol.Solver != "MaTCH-hierarchical" {
		t.Fatalf("solver label %q", sol.Solver)
	}
	// Many-to-one direct CE on 36x6 should not beat it dramatically,
	// and hierarchical must beat random scatter.
	rnd := math.Inf(1)
	for trial := 0; trial < 20; trial++ {
		m := make([]int, 36)
		for i := range m {
			m[i] = (i*7 + trial) % 6
		}
		if exec, err := p.Exec(m); err == nil && exec < rnd {
			rnd = exec
		}
	}
	if sol.Exec >= rnd {
		t.Fatalf("hierarchical %v worse than scatter %v", sol.Exec, rnd)
	}
}

func TestSolveHierarchicalRejectsSmallApp(t *testing.T) {
	tg := NewTaskGraph([]float64{1, 1})
	pf := NewPlatform([]float64{1, 1, 1})
	pf.AddLink(0, 1, 1)
	pf.AddLink(1, 2, 1)
	p, err := NewProblem(tg, pf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveHierarchical(p, MaTCHOptions{}); err == nil {
		t.Fatal("|Vt| < |Vr| accepted")
	}
}

func TestSimulateValidatesAnalyticModel(t *testing.T) {
	p, err := GeneratePaper(13, 12)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveMaTCH(p, MaTCHOptions{Seed: 1, MaxIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(p, sol.Mapping, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerStep) != 4 {
		t.Fatalf("per-step count %d", len(rep.PerStep))
	}
	if math.Abs(rep.AnalyticExec-sol.Exec) > 1e-9 {
		t.Fatalf("analytic %v != solution exec %v", rep.AnalyticExec, sol.Exec)
	}
	if rep.ModelRatio < 1-1e-9 || rep.ModelRatio > 2.5 {
		t.Fatalf("model ratio %v outside sane band", rep.ModelRatio)
	}
	if rep.Events == 0 || rep.Makespan <= 0 {
		t.Fatal("empty simulation")
	}
	if _, err := Simulate(p, []int{0}, 1); err == nil {
		t.Fatal("bad mapping accepted")
	}
}

func TestSimulateAgreesWithModelOrdering(t *testing.T) {
	p, err := GeneratePaper(14, 10)
	if err != nil {
		t.Fatal(err)
	}
	good, err := SolveMaTCH(p, MaTCHOptions{Seed: 2, MaxIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := SolveRandom(p, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if good.Exec >= bad.Exec {
		t.Skip("random draw happened to match the optimised mapping")
	}
	simGood, err := Simulate(p, good.Mapping, 1)
	if err != nil {
		t.Fatal(err)
	}
	simBad, err := Simulate(p, bad.Mapping, 1)
	if err != nil {
		t.Fatal(err)
	}
	if simGood.Makespan >= simBad.Makespan {
		t.Fatalf("simulator ranks mappings opposite to the model: %v vs %v",
			simGood.Makespan, simBad.Makespan)
	}
}
