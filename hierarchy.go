package matchsim

import (
	"matchsim/internal/core"
	"matchsim/internal/partition"
	"matchsim/internal/sim"
)

// HierarchicalSolution extends Solution with the clustering stage of the
// FastMap-style hierarchical workflow.
type HierarchicalSolution struct {
	Solution
	// Cluster[t] is the cluster original task t was merged into.
	Cluster []int
	// ClusterExec is the coarse (cluster-graph) execution time MaTCH
	// optimised; Exec is the true full-graph cost of the expanded
	// mapping.
	ClusterExec float64
}

// SolveHierarchical handles applications with more tasks than resources
// the way the authors' FastMap scheme does: the task graph is coarsened
// to |Vr| clusters by heavy-edge contraction (co-locating the heaviest
// communicators), the cluster graph is mapped with MaTCH, and the
// mapping is expanded back to the original tasks. Requires
// |Vt| >= |Vr|.
func SolveHierarchical(p *Problem, opts MaTCHOptions) (*HierarchicalSolution, error) {
	res, err := partition.MapHierarchical(p.eval.TIG(), p.eval.Platform(), core.Options{
		SampleSize:    opts.SampleSize,
		Rho:           opts.Rho,
		Zeta:          opts.Zeta,
		StallC:        opts.StallC,
		MaxIterations: opts.MaxIterations,
		Workers:       opts.Workers,
		Seed:          opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &HierarchicalSolution{
		Solution: Solution{
			Mapping:     res.Mapping,
			Exec:        res.Exec,
			MappingTime: res.CoarseRun.MappingTime,
			Iterations:  res.CoarseRun.Iterations,
			Evaluations: res.CoarseRun.Evaluations,
			Solver:      "MaTCH-hierarchical",
		},
		Cluster:     res.Coarsening.Assign,
		ClusterExec: res.CoarseRun.Exec,
	}, nil
}

// SimulationReport is the outcome of executing a mapping on the
// discrete-event simulator instead of the analytic cost model.
type SimulationReport struct {
	// Makespan is the simulated finish time over all supersteps.
	Makespan float64
	// PerStep is each superstep's duration.
	PerStep []float64
	// BusyTime and IdleTime are per-resource totals.
	BusyTime, IdleTime []float64
	// AnalyticExec is the eq. (2) prediction for one superstep.
	AnalyticExec float64
	// ModelRatio is mean simulated step time / AnalyticExec; 1.0 means
	// the analytic model predicted the execution exactly, larger values
	// measure dependency stalls the model ignores.
	ModelRatio float64
	// Events counts simulated job completions.
	Events int
}

// Simulate executes the mapped application for `supersteps` bulk-
// synchronous iterations on the discrete-event simulator: each resource
// serially runs its tasks' compute work, then the per-edge send and
// receive work for interactions that cross resources. Use it to validate
// that the analytic ET of a Solution predicts an actual execution.
func Simulate(p *Problem, mapping []int, supersteps int) (*SimulationReport, error) {
	rep, err := sim.Run(p.eval, mapping, supersteps)
	if err != nil {
		return nil, err
	}
	return &SimulationReport{
		Makespan:     rep.Makespan,
		PerStep:      rep.PerStep,
		BusyTime:     rep.BusyTime,
		IdleTime:     rep.IdleTime,
		AnalyticExec: rep.AnalyticExec,
		ModelRatio:   rep.ModelRatio,
		Events:       rep.Events,
	}, nil
}
