// Package client is the Go client of the matchd mapping service. It
// speaks the HTTP/JSON protocol of internal/httpapi using only the public
// wire types of package api, exactly as a third-party consumer would.
//
//	c := client.New("http://127.0.0.1:8080")
//	info, _ := c.Submit(ctx, api.SubmitRequest{Instance: inst, Solver: api.SolverMaTCH})
//	info, _ = c.Wait(ctx, info.ID, 50*time.Millisecond)
//	res, _ := c.Result(ctx, info.ID)
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"matchsim/api"
)

// Client talks to one matchd instance.
type Client struct {
	base        string
	http        *http.Client
	traceparent string
}

// New builds a client for the daemon at base (e.g. "http://127.0.0.1:8080").
// The default underlying http.Client has no timeout — long solves stream
// and poll fine; use WithHTTPClient to impose one.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// WithHTTPClient swaps the underlying HTTP client (timeouts, transports).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.http = hc
	return c
}

// WithTraceparent sets a W3C traceparent header value
// ("00-<traceid>-<spanid>-01") injected into every request, joining the
// daemon-side spans to the caller's trace. A per-request value attached
// with ContextWithTraceparent takes precedence.
func (c *Client) WithTraceparent(tp string) *Client {
	c.traceparent = tp
	return c
}

// traceparentCtxKey carries a per-request traceparent without coupling
// the client to any tracing implementation.
type traceparentCtxKey struct{}

// ContextWithTraceparent returns ctx carrying a traceparent header value
// that the client injects into requests issued under that context.
func ContextWithTraceparent(ctx context.Context, tp string) context.Context {
	return context.WithValue(ctx, traceparentCtxKey{}, tp)
}

// traceparentFor resolves the header value for one request: the
// context-scoped value wins over the client-wide one.
func (c *Client) traceparentFor(ctx context.Context) string {
	if tp, _ := ctx.Value(traceparentCtxKey{}).(string); tp != "" {
		return tp
	}
	return c.traceparent
}

// do issues a request and decodes a JSON response into out, converting
// non-2xx responses into *api.Error.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp := c.traceparentFor(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &api.Error{Status: resp.StatusCode}
		if err := json.NewDecoder(resp.Body).Decode(apiErr); err != nil || apiErr.Message == "" {
			apiErr.Message = resp.Status
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job. The returned info is the job's initial state:
// "queued" normally, "done" when the submission was answered from the
// daemon's result cache.
func (c *Client) Submit(ctx context.Context, req api.SubmitRequest) (api.JobInfo, error) {
	var info api.JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &info)
	return info, err
}

// SubmitBatch posts a batch of jobs in one request (POST /v1/jobs:batch).
// The response carries one item per job, in order; partial failure is
// per-item (check each item's Status/Error), so err is non-nil only when
// the batch itself was rejected or the transport failed.
func (c *Client) SubmitBatch(ctx context.Context, req api.BatchSubmitRequest) (api.BatchSubmitResponse, error) {
	var resp api.BatchSubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs:batch", req, &resp)
	return resp, err
}

// Checkpoint fetches a job's latest resumable checkpoint — the handoff
// document a supervisor resubmits as SubmitRequest.Checkpoint to resume
// the job elsewhere. Jobs without one yield an *api.Error with Status 404.
func (c *Client) Checkpoint(ctx context.Context, id string) (api.CheckpointDoc, error) {
	var doc api.CheckpointDoc
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/checkpoint", nil, &doc)
	return doc, err
}

// Info fetches a job's status.
func (c *Client) Info(ctx context.Context, id string) (api.JobInfo, error) {
	var info api.JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &info)
	return info, err
}

// Result fetches a finished job's result. Unfinished jobs yield an
// *api.Error with Status 409.
func (c *Client) Result(ctx context.Context, id string) (api.JobResult, error) {
	var res api.JobResult
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res)
	return res, err
}

// Cancel requests cancellation; running solvers stop within one iteration.
func (c *Client) Cancel(ctx context.Context, id string) (api.JobInfo, error) {
	var info api.JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &info)
	return info, err
}

// Wait polls a job until it reaches a terminal state, ctx expires, or a
// request fails. interval <= 0 defaults to 100ms.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (api.JobInfo, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		info, err := c.Info(ctx, id)
		if err != nil {
			return info, err
		}
		if api.TerminalState(info.State) {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Events subscribes to a job's SSE progress stream and invokes fn for
// every event, history first. It returns when the job ends (nil), ctx is
// cancelled, or the stream breaks.
func (c *Client) Events(ctx context.Context, id string, fn func(api.Event)) error {
	return c.EventsFrom(ctx, id, 0, fn)
}

// EventsFrom is Events starting at buffered-event index from: the daemon
// skips the first from events of the job's history, so a caller that
// already consumed them (a reconnect after a dropped stream) resumes
// exactly where it left off.
func (c *Client) EventsFrom(ctx context.Context, id string, from int, fn func(api.Event)) error {
	path := c.base + "/v1/jobs/" + id + "/events"
	if from > 0 {
		path += "?from=" + fmt.Sprint(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if tp := c.traceparentFor(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &api.Error{Status: resp.StatusCode}
		if err := json.NewDecoder(resp.Body).Decode(apiErr); err != nil || apiErr.Message == "" {
			apiErr.Message = resp.Status
		}
		return apiErr
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // event: lines, keep-alives, blank separators
		}
		var e api.Event
		if err := json.Unmarshal([]byte(data), &e); err != nil {
			return fmt.Errorf("client: malformed event payload: %w", err)
		}
		fn(e)
	}
	if err := scanner.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// JobWatcher is a pull-based view of a job's SSE progress stream,
// returned by WatchJob. Next blocks for the next event; after it returns
// false, Err reports why the stream ended (nil on normal job completion).
// Close releases the stream early; it is safe to call more than once and
// concurrently with Next.
type JobWatcher struct {
	cancel context.CancelFunc
	events chan api.Event
	done   chan struct{}
	err    error // written before done closes, read after
}

// WatchJob subscribes to a job's progress events as a typed iterator —
// the pull-shaped counterpart of Events for consumers that drive their
// own loop (matchtop renders from one of these):
//
//	w, err := c.WatchJob(ctx, id)
//	if err != nil { ... }
//	defer w.Close()
//	for e, ok := w.Next(); ok; e, ok = w.Next() {
//		render(e)
//	}
//	if err := w.Err(); err != nil { ... }
//
// The stream replays the job's buffered history first, then follows it
// live until the job reaches a terminal state, ctx is cancelled, or the
// stream fails for good. A dropped connection is not fatal: the watcher
// reconnects with exponential backoff, resuming from the last event it
// delivered (the daemon's ?from= index), so consumers see every event
// exactly once across reconnects. Only errors no retry can fix — a 4xx
// from the daemon, a cancelled context — end the watch.
func (c *Client) WatchJob(ctx context.Context, id string) (*JobWatcher, error) {
	// Probe the job first so an unknown id fails here, typed, instead of
	// surfacing from the first Next call.
	if _, err := c.Info(ctx, id); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	w := &JobWatcher{
		cancel: cancel,
		events: make(chan api.Event),
		done:   make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		err := c.watch(ctx, id, func(e api.Event) {
			select {
			case w.events <- e:
			case <-ctx.Done():
			}
		})
		if err != nil && ctx.Err() == nil {
			w.err = err
		}
	}()
	return w, nil
}

// watch is WatchJob's reconnect loop: stream events from the last seen
// index, and on a retryable failure (transport error, 5xx) back off
// exponentially — 100ms doubling to a 5s cap, reset whenever a connection
// makes progress — and resubscribe from where the stream dropped. It
// returns nil once the job's end event has been delivered or the job is
// otherwise terminal, and an error only when no retry can fix it (4xx).
func (c *Client) watch(ctx context.Context, id string, deliver func(api.Event)) error {
	const (
		initialBackoff = 100 * time.Millisecond
		maxBackoff     = 5 * time.Second
	)
	seen := 0
	sawEnd := false
	backoff := initialBackoff
	for {
		before := seen
		err := c.EventsFrom(ctx, id, seen, func(e api.Event) {
			seen++
			if e.Kind == "end" {
				sawEnd = true
			}
			deliver(e)
		})
		switch {
		case ctx.Err() != nil:
			return nil // Close or caller cancellation, not a failure
		case err == nil && sawEnd:
			return nil
		case err == nil:
			// Clean EOF without an end event: the daemon closed the
			// stream mid-job (e.g. it is shutting down). If the job is
			// already terminal there is nothing more to stream; otherwise
			// fall through and reconnect.
			if info, ierr := c.Info(ctx, id); ierr == nil && api.TerminalState(info.State) {
				return nil
			}
		default:
			var apiErr *api.Error
			if errors.As(err, &apiErr) && apiErr.Status < 500 {
				return err // the daemon rejected us; retrying cannot help
			}
		}
		if seen > before {
			backoff = initialBackoff // the connection worked; start fresh
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// Next blocks until the next event arrives. ok is false once the stream
// has ended — job finished, watcher closed, or transport failure (see Err).
func (w *JobWatcher) Next() (e api.Event, ok bool) {
	select {
	case e = <-w.events:
		return e, true
	case <-w.done:
		// Drain any event raced in before the stream goroutine exited.
		select {
		case e = <-w.events:
			return e, true
		default:
			return api.Event{}, false
		}
	}
}

// Err reports why the stream ended: nil for normal completion or Close,
// the transport/decode error otherwise. Valid after Next returns false.
func (w *JobWatcher) Err() error {
	select {
	case <-w.done:
		return w.err
	default:
		return nil
	}
}

// Close detaches the watcher and releases the underlying connection.
func (w *JobWatcher) Close() {
	w.cancel()
	<-w.done
}

// Healthy reports whether the daemon answers /healthz with 200
// (liveness: the process serves requests).
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Ready fetches the daemon's readiness document (/readyz). The returned
// status carries the individual check results even when the daemon is
// unready — err is then the *api.Error with Status 503.
func (c *Client) Ready(ctx context.Context) (api.ReadyStatus, error) {
	var rs api.ReadyStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return rs, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return rs, err
	}
	defer resp.Body.Close()
	decErr := json.NewDecoder(resp.Body).Decode(&rs)
	if resp.StatusCode != http.StatusOK {
		return rs, &api.Error{Status: resp.StatusCode, Message: "daemon not ready"}
	}
	return rs, decErr
}

// ClusterStatus fetches a coordinator's topology/routing document
// (GET /v1/cluster). Standalone daemons answer 404.
func (c *Client) ClusterStatus(ctx context.Context) (api.ClusterStatus, error) {
	var st api.ClusterStatus
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &st)
	return st, err
}

// DrainWorker asks a coordinator to hand the named worker's in-flight
// solves off to the surviving nodes (POST /v1/cluster/drain) and
// returns the post-drain topology document.
func (c *Client) DrainWorker(ctx context.Context, worker string) (api.ClusterStatus, error) {
	var st api.ClusterStatus
	err := c.do(ctx, http.MethodPost, "/v1/cluster/drain", api.ClusterDrainRequest{Worker: worker}, &st)
	return st, err
}

// Traces lists the daemon's retained traces, most recent first (limit
// <= 0 takes the server default).
func (c *Client) Traces(ctx context.Context, limit int) ([]api.TraceSummary, error) {
	path := "/v1/traces"
	if limit > 0 {
		path += "?limit=" + fmt.Sprint(limit)
	}
	var out []api.TraceSummary
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Trace fetches one trace's span tree by trace ID.
func (c *Client) Trace(ctx context.Context, traceID string) (api.TraceDoc, error) {
	var doc api.TraceDoc
	err := c.do(ctx, http.MethodGet, "/v1/traces/"+traceID, nil, &doc)
	return doc, err
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &api.Error{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}
