package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"matchsim/api"
)

// flakyEventServer simulates a matchd node whose SSE connections keep
// dropping: each GET /v1/jobs/{id}/events connection serves at most
// chunk events past the requested ?from offset and then ends the
// response without the job's end event. Only a client that reconnects
// and resumes from its last seen index ever observes the whole stream.
type flakyEventServer struct {
	mu     sync.Mutex
	events []api.Event
	chunk  int
	conns  int
	// failWith, when non-zero, makes every subsequent events request
	// fail with that HTTP status instead of streaming.
	failWith int
}

func (f *flakyEventServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		// The job stays "running" until the final (end) event has been
		// served at least once, so the watcher's terminal-state probe
		// does not end the watch early.
		state := api.StateRunning
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.JobInfo{ID: r.PathValue("id"), State: state})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.conns++
		fail := f.failWith
		from := 0
		if q := r.URL.Query().Get("from"); q != "" {
			from, _ = strconv.Atoi(q)
		}
		end := from + f.chunk
		if end > len(f.events) {
			end = len(f.events)
		}
		serve := append([]api.Event(nil), f.events[from:end]...)
		f.mu.Unlock()

		if fail != 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(fail)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "induced failure"})
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		for _, e := range serve {
			data, _ := json.Marshal(e)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind, data)
		}
		// Return without the rest of the stream: a dropped connection
		// from the client's point of view (clean EOF, no end event).
	})
	return mux
}

func makeEvents(iters int) []api.Event {
	evs := []api.Event{{Kind: "start", Solver: "match", Tasks: 8, Seed: 7}}
	for i := 0; i < iters; i++ {
		evs = append(evs, api.Event{Kind: "iter", Iter: i, Best: float64(100 - i)})
	}
	evs = append(evs, api.Event{Kind: "end", Exec: 42, Iterations: iters, StopReason: "completed"})
	return evs
}

// TestWatchJobReconnects pins the auto-reconnect contract: a stream that
// keeps dropping mid-job is transparently resumed from the last seen
// event index, every event is delivered exactly once and in order, and
// the watcher ends cleanly once the end event arrives.
func TestWatchJobReconnects(t *testing.T) {
	f := &flakyEventServer{events: makeEvents(10), chunk: 3}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w, err := New(srv.URL).WatchJob(ctx, "j1")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var got []api.Event
	for e, ok := w.Next(); ok; e, ok = w.Next() {
		got = append(got, e)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("watcher ended with error: %v", err)
	}
	if len(got) != len(f.events) {
		t.Fatalf("delivered %d events, want %d", len(got), len(f.events))
	}
	for i, e := range got {
		want := f.events[i]
		if e.Kind != want.Kind || e.Iter != want.Iter || e.Best != want.Best {
			t.Fatalf("event %d = %+v, want %+v", i, e, want)
		}
	}
	f.mu.Lock()
	conns := f.conns
	f.mu.Unlock()
	if minConns := (len(f.events) + f.chunk - 1) / f.chunk; conns < minConns {
		t.Fatalf("served %d connections, want at least %d (stream must have reconnected)", conns, minConns)
	}
}

// TestWatchJobFatalStatus: a 4xx from the daemon ends the watch with the
// typed error instead of retrying forever.
func TestWatchJobFatalStatus(t *testing.T) {
	f := &flakyEventServer{events: makeEvents(6), chunk: 3}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w, err := New(srv.URL).WatchJob(ctx, "j2")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Let the first chunk stream, then poison the endpoint.
	seen := 0
	for e, ok := w.Next(); ok; e, ok = w.Next() {
		seen++
		if e.Iter == 1 {
			f.mu.Lock()
			f.failWith = http.StatusNotFound
			f.mu.Unlock()
		}
	}
	apiErr, ok := w.Err().(*api.Error)
	if !ok {
		t.Fatalf("watcher error = %v, want *api.Error", w.Err())
	}
	if apiErr.Status != http.StatusNotFound {
		t.Fatalf("watcher error status = %d, want 404", apiErr.Status)
	}
	if seen == 0 {
		t.Fatal("no events delivered before the induced failure")
	}
}

// TestWatchJobCloseDuringBackoff: Close while the watcher waits out a
// backoff returns promptly without an error.
func TestWatchJobCloseDuringBackoff(t *testing.T) {
	f := &flakyEventServer{events: makeEvents(10), chunk: 2}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	w, err := New(srv.URL).WatchJob(context.Background(), "j3")
	if err != nil {
		t.Fatal(err)
	}
	// Consume a couple of events so at least one reconnect cycle runs.
	for i := 0; i < 3; i++ {
		if _, ok := w.Next(); !ok {
			t.Fatal("stream ended prematurely")
		}
	}
	done := make(chan struct{})
	go func() { w.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}
	if err := w.Err(); err != nil {
		t.Fatalf("closed watcher reports error: %v", err)
	}
}
