package matchsim

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func buildTinyProblem(t *testing.T) *Problem {
	t.Helper()
	tg := NewTaskGraph([]float64{4, 2, 7})
	if err := tg.AddInteraction(0, 1, 55); err != nil {
		t.Fatal(err)
	}
	if err := tg.AddInteraction(1, 2, 60); err != nil {
		t.Fatal(err)
	}
	pf := NewPlatform([]float64{1, 2, 1})
	for _, l := range [][3]float64{{0, 1, 12}, {1, 2, 15}, {0, 2, 11}} {
		if err := pf.AddLink(int(l[0]), int(l[1]), l[2]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewProblem(tg, pf)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildAndEvaluateProblem(t *testing.T) {
	p := buildTinyProblem(t)
	if p.NumTasks() != 3 || p.NumResources() != 3 {
		t.Fatalf("sizes %d/%d", p.NumTasks(), p.NumResources())
	}
	exec, err := p.Exec([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Resource 1 hosts task 1: 2*2 + 55*12 + 60*15 = 4 + 660 + 900 = 1564.
	if exec != 1564 {
		t.Fatalf("Exec = %v, want 1564", exec)
	}
	if _, err := p.Exec([]int{0, 1}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := p.Exec([]int{0, 1, 9}); err == nil {
		t.Fatal("out-of-range mapping accepted")
	}
}

func TestExplain(t *testing.T) {
	p := buildTinyProblem(t)
	b, err := p.Explain([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Exec != 1564 || b.Busiest != 1 {
		t.Fatalf("breakdown %+v", b)
	}
	for s := 0; s < 3; s++ {
		if math.Abs(b.Compute[s]+b.Comm[s]-b.Loads[s]) > 1e-9 {
			t.Fatalf("inconsistent breakdown at %d", s)
		}
	}
	if b.Imbalance < 1 {
		t.Fatalf("imbalance %v < 1", b.Imbalance)
	}
	if _, err := p.Explain([]int{1}); err == nil {
		t.Fatal("bad mapping accepted by Explain")
	}
}

func TestSparsePlatformAutoCloses(t *testing.T) {
	tg := NewTaskGraph([]float64{1, 1, 1})
	tg.AddInteraction(0, 2, 10)
	pf := NewPlatform([]float64{1, 1, 1})
	pf.AddLink(0, 1, 5)
	pf.AddLink(1, 2, 5)
	// No direct 0-2 link: NewProblem must close it via routing (cost 10).
	p, err := NewProblem(tg, pf)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := p.Exec([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Tasks 0 and 2 communicate 10 units at routed cost 10 = 100, plus
	// compute 1 each: resource 0 load = 1 + 100 = 101.
	if exec != 101 {
		t.Fatalf("Exec = %v, want 101", exec)
	}
}

func TestNewProblemRejectsDisconnectedPlatform(t *testing.T) {
	tg := NewTaskGraph([]float64{1, 1})
	pf := NewPlatform([]float64{1, 1})
	if _, err := NewProblem(tg, pf); err == nil {
		t.Fatal("disconnected 2-resource platform accepted")
	}
	if _, err := NewProblem(nil, pf); err == nil {
		t.Fatal("nil task graph accepted")
	}
}

func TestGeneratePaperAndSolveAll(t *testing.T) {
	p, err := GeneratePaper(42, 10)
	if err != nil {
		t.Fatal(err)
	}
	solvers := map[string]func() (*Solution, error){
		"match": func() (*Solution, error) {
			return SolveMaTCH(p, MaTCHOptions{Seed: 1, MaxIterations: 60})
		},
		"ga": func() (*Solution, error) {
			return SolveGA(p, GAOptions{PopulationSize: 40, Generations: 40, Seed: 1})
		},
		"distributed": func() (*Solution, error) {
			return SolveDistributed(p, DistributedOptions{Seed: 1, MaxIterations: 60})
		},
		"random": func() (*Solution, error) { return SolveRandom(p, 500, 1) },
		"greedy": func() (*Solution, error) { return SolveGreedy(p) },
		"local":  func() (*Solution, error) { return SolveLocalSearch(p, 2, 1) },
		"anneal": func() (*Solution, error) { return SolveAnnealing(p, AnnealingOptions{Seed: 1}) },
	}
	for name, f := range solvers {
		sol, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sol.Mapping) != 10 {
			t.Fatalf("%s: mapping length %d", name, len(sol.Mapping))
		}
		recomputed, err := p.Exec(sol.Mapping)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(recomputed-sol.Exec) > 1e-9 {
			t.Fatalf("%s: exec %v vs recomputed %v", name, sol.Exec, recomputed)
		}
		if sol.Solver == "" || sol.MappingTime <= 0 {
			t.Fatalf("%s: missing metadata %+v", name, sol)
		}
	}
}

func TestSolveMaTCHTelemetry(t *testing.T) {
	p, err := GeneratePaper(7, 8)
	if err != nil {
		t.Fatal(err)
	}
	var traces []IterationTrace
	sol, err := SolveMaTCH(p, MaTCHOptions{
		Seed: 2, MaxIterations: 30,
		OnIteration: func(tr IterationTrace) { traces = append(traces, tr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != sol.Iterations {
		t.Fatalf("%d traces for %d iterations", len(traces), sol.Iterations)
	}
	last := traces[len(traces)-1]
	if last.BestSoFar != sol.Exec {
		t.Fatalf("final BestSoFar %v != solution %v", last.BestSoFar, sol.Exec)
	}
}

func TestSolveGATelemetry(t *testing.T) {
	p, err := GeneratePaper(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	_, err = SolveGA(p, GAOptions{
		PopulationSize: 20, Generations: 15, Seed: 1,
		OnGeneration: func(tr IterationTrace) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 15 {
		t.Fatalf("generation callbacks %d", count)
	}
}

func TestManyToOneFacade(t *testing.T) {
	tg := NewTaskGraph([]float64{1, 1, 1, 1})
	tg.AddInteraction(0, 1, 50)
	tg.AddInteraction(2, 3, 50)
	pf := NewPlatform([]float64{1, 1})
	pf.AddLink(0, 1, 10)
	p, err := NewProblem(tg, pf)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveMaTCHManyToOne(p, MaTCHOptions{Seed: 1, MaxIterations: 100, SampleSize: 300, Rho: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: pair (0,1) on one resource, (2,3) on the other: exec = 2.
	if sol.Exec != 2 {
		t.Fatalf("many-to-one exec %v, want 2", sol.Exec)
	}
}

func TestGenerateOverset(t *testing.T) {
	p, err := GenerateOverset(3, OversetConfig{NumGrids: 12})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTasks() != 12 || p.NumResources() != 12 {
		t.Fatalf("sizes %d/%d", p.NumTasks(), p.NumResources())
	}
	sol, err := SolveMaTCH(p, MaTCHOptions{Seed: 1, MaxIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Mapping) != 12 {
		t.Fatal("overset solve failed")
	}
	if _, err := GenerateOverset(1, OversetConfig{}); err == nil {
		t.Fatal("zero grids accepted")
	}
}

func TestGenerateClustered(t *testing.T) {
	p, err := GenerateClustered(5, ClusteredPlatformConfig{Clusters: 3, PerCluster: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTasks() != 12 {
		t.Fatalf("size %d", p.NumTasks())
	}
	sol, err := SolveMaTCH(p, MaTCHOptions{Seed: 1, MaxIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := SolveRandom(p, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Exec > rnd.Exec {
		t.Fatalf("MaTCH %v worse than 20 random draws %v on clustered platform", sol.Exec, rnd.Exec)
	}
	if _, err := GenerateClustered(1, ClusteredPlatformConfig{}); err == nil {
		t.Fatal("zero shape accepted")
	}
}

func TestInstanceRoundTripThroughJSON(t *testing.T) {
	p, err := GeneratePaper(11, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteInstance(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := []int{0, 1, 2, 3, 4, 5, 6, 7}
	a, err := p.Exec(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Exec(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("round-tripped problem differs: %v vs %v", a, b)
	}
}

func TestDOTOutputs(t *testing.T) {
	p := buildTinyProblem(t)
	if !strings.Contains(p.TaskGraphDOT(), "graph \"tig\"") {
		t.Fatal("TIG DOT malformed")
	}
	if !strings.Contains(p.PlatformDOT(), "graph \"platform\"") {
		t.Fatal("platform DOT malformed")
	}
}

func TestDuplicateInteractionRejected(t *testing.T) {
	tg := NewTaskGraph([]float64{1, 1})
	if err := tg.AddInteraction(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := tg.AddInteraction(1, 0, 6); err == nil {
		t.Fatal("duplicate interaction accepted")
	}
	if err := tg.AddInteraction(0, 0, 1); err == nil {
		t.Fatal("self-interaction accepted")
	}
}

// TestSolveMaTCHContextCancellation pins the public cancellation
// contract: a context cancelled mid-run yields a best-so-far Solution
// with StopReason "cancelled" and a non-nil, resumable Checkpoint; a
// context cancelled before the first iteration yields the context error.
func TestSolveMaTCHContextCancellation(t *testing.T) {
	p, err := GeneratePaper(44, 20)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel after a few iterations via the telemetry callback.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sol, err := SolveMaTCH(p, MaTCHOptions{
		Seed: 3, Workers: 1, MaxIterations: 100000, StallC: 100000, GammaStallWindow: 100000,
		Context: ctx,
		OnIteration: func(tr IterationTrace) {
			if tr.Iteration >= 3 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if sol.StopReason != StopCancelled {
		t.Fatalf("StopReason = %q, want %q", sol.StopReason, StopCancelled)
	}
	if sol.Iterations == 0 || sol.Iterations > 5 {
		t.Errorf("cancelled after %d iterations, want a handful", sol.Iterations)
	}
	if _, err := p.Exec(sol.Mapping); err != nil {
		t.Errorf("best-so-far mapping invalid: %v", err)
	}
	ckpt := sol.Checkpoint()
	if ckpt == nil {
		t.Fatal("cancelled run has no checkpoint")
	}

	// The checkpoint resumes to completion.
	resumed, err := ResumeMaTCH(p, ckpt, MaTCHOptions{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatalf("ResumeMaTCH: %v", err)
	}
	if resumed.Exec > sol.Exec {
		t.Errorf("resumed exec %v worse than checkpointed incumbent %v", resumed.Exec, sol.Exec)
	}

	// Pre-cancelled context: no iteration ever completes, ctx error out.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if _, err := SolveMaTCH(p, MaTCHOptions{Seed: 3, Workers: 1, Context: dead}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled run returned %v, want context.Canceled", err)
	}
}

// TestSolveGAContextCancellation pins the GA's generation-granular
// cancellation.
func TestSolveGAContextCancellation(t *testing.T) {
	p, err := GeneratePaper(45, 12)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sol, err := SolveGA(p, GAOptions{
		Seed: 1, Workers: 1, PopulationSize: 40, Generations: 100000,
		Context: ctx,
		OnGeneration: func(tr IterationTrace) {
			if tr.Iteration >= 3 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("cancelled GA errored: %v", err)
	}
	if sol.StopReason != StopCancelled {
		t.Fatalf("StopReason = %q, want %q", sol.StopReason, StopCancelled)
	}
	if _, err := p.Exec(sol.Mapping); err != nil {
		t.Errorf("best-so-far mapping invalid: %v", err)
	}
}
