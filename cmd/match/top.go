// matchtop: a live convergence view over a running (or recorded) solver.
// `match -top -job ID [-daemon URL]` follows a matchd job's SSE stream;
// `match -top -tail FILE` follows a JSONL trace file, tail -f style. Both
// feed the same model: a one-screen summary of the CE run's trajectory —
// best/gamma sparklines, elite and pruning effectiveness, sampler
// counters and phase timings — redrawn in place on a TTY.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"matchsim/api"
	"matchsim/client"
	"matchsim/internal/trace"
)

// topModel folds a stream of trace-schema events into the latest view
// state. It is transport-agnostic: SSE payloads and trace-file lines are
// the same JSON document.
type topModel struct {
	solver string
	tasks  int
	seed   uint64

	iter      api.Event // latest iteration event
	iters     int       // iteration events seen
	bestHist  []float64 // BestSoFar per iteration, for the sparkline
	gammaHist []float64
	end       *api.Event

	// Island-model view state: per-island best-so-far plus cumulative
	// exchange activity. The islands line renders only when the stream
	// carries more than one island.
	islandBest  map[int]float64
	migrantsIn  int
	migrantsOut int
	blendRounds int
}

func (m *topModel) observe(e api.Event) {
	switch e.Kind {
	case "start":
		// A new run on the same stream (resume, shared daemon trace file)
		// resets the view.
		*m = topModel{solver: e.Solver, tasks: e.Tasks, seed: e.Seed}
	case "iter":
		m.iter = e
		m.iters++
		m.bestHist = append(m.bestHist, e.BestSoFar)
		m.gammaHist = append(m.gammaHist, e.Gamma)
		if m.islandBest == nil {
			m.islandBest = make(map[int]float64)
		}
		m.islandBest[e.Island] = e.BestSoFar
		m.migrantsIn += e.MigrantsIn
		m.migrantsOut += e.MigrantsOut
		m.blendRounds += e.BlendRounds
	case "end":
		end := e
		m.end = &end
	}
}

// sparkRunes are the classic eighth-block ramp.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last `width` values scaled to the block ramp.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// render produces one full frame.
func (m *topModel) render() string {
	var sb strings.Builder
	state := "waiting"
	if m.iters > 0 {
		state = "running"
	}
	if m.end != nil {
		state = "finished"
	}
	fmt.Fprintf(&sb, "matchtop  %-14s tasks=%-5d seed=%-8d [%s]\n",
		m.solver, m.tasks, m.seed, state)

	e := m.iter
	if m.iters > 0 {
		fmt.Fprintf(&sb, "iter %-6d best %-12.4g best-so-far %-12.4g gamma %-12.4g elite %d/%d\n",
			e.Iter, e.Best, e.BestSoFar, e.Gamma, e.Elite, e.Draws)
		fmt.Fprintf(&sb, "best-so-far %s\n", sparkline(m.bestHist, 60))
		fmt.Fprintf(&sb, "gamma       %s\n", sparkline(m.gammaHist, 60))
		if e.Draws > 0 {
			fmt.Fprintf(&sb, "pruned %5.1f%% of draws   rescored %-6d reject %.2f/draw   fallback %.2f%%\n",
				100*float64(e.Pruned)/float64(e.Draws), e.Rescored,
				float64(e.RejectTries)/float64(e.Draws),
				100*float64(e.FallbackDraws)/float64(e.Draws))
		}
		if e.SampleNs > 0 {
			fmt.Fprintf(&sb, "phases  sample %-10s select %-10s update %-10s steals %-4d idle %s\n",
				time.Duration(e.SampleNs).Round(time.Microsecond),
				time.Duration(e.SelectNs).Round(time.Microsecond),
				time.Duration(e.UpdateNs).Round(time.Microsecond),
				e.StealUnits,
				time.Duration(e.IdleNs).Round(time.Microsecond))
		}
		if len(m.islandBest) > 1 {
			best, bestIsland := 0.0, -1
			for g, v := range m.islandBest {
				if bestIsland < 0 || v < best || (v == best && g < bestIsland) {
					best, bestIsland = v, g
				}
			}
			fmt.Fprintf(&sb, "islands %-4d migrants in/out %d/%d   blends %-6d leader island %d (%.4g)\n",
				len(m.islandBest), m.migrantsIn, m.migrantsOut, m.blendRounds, bestIsland, best)
		}
	}
	if m.end != nil {
		fmt.Fprintf(&sb, "done: exec %.4g after %d iteration(s), %d evaluations in %v (%s)\n",
			m.end.Exec, m.end.Iterations, m.end.Evaluations,
			time.Duration(m.end.MappingTime).Round(time.Millisecond), m.end.StopReason)
	}
	return sb.String()
}

// frameWriter redraws frames in place on a TTY and appends them on a
// plain stream (pipes, tests).
type frameWriter struct {
	out       io.Writer
	tty       bool
	prevLines int
}

func newFrameWriter(out *os.File) *frameWriter {
	fi, err := out.Stat()
	tty := err == nil && fi.Mode()&os.ModeCharDevice != 0
	return &frameWriter{out: out, tty: tty}
}

func (fw *frameWriter) draw(frame string) {
	if fw.tty && fw.prevLines > 0 {
		// Cursor up over the previous frame, then clear to end of screen.
		fmt.Fprintf(fw.out, "\x1b[%dA\x1b[J", fw.prevLines)
	}
	io.WriteString(fw.out, frame)
	if !fw.tty {
		io.WriteString(fw.out, "\n")
	}
	fw.prevLines = strings.Count(frame, "\n")
}

// runTop drives the matchtop view per cfg: SSE mode when -job is set,
// trace-tail mode when -tail is set.
func runTop(cfg config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	model := &topModel{}
	fw := newFrameWriter(os.Stdout)

	// Rate-limit redraws: solver iterations can arrive far faster than a
	// terminal usefully repaints. Terminal frames are cheap but not free.
	var lastDraw time.Time
	draw := func(force bool) {
		if !force && time.Since(lastDraw) < 100*time.Millisecond {
			return
		}
		lastDraw = time.Now()
		fw.draw(model.render())
	}

	switch {
	case cfg.topJob != "":
		c := client.New(cfg.daemon)
		w, err := c.WatchJob(ctx, cfg.topJob)
		if err != nil {
			return err
		}
		defer w.Close()
		for e, ok := w.Next(); ok; e, ok = w.Next() {
			model.observe(e)
			draw(e.Kind != "iter")
		}
		draw(true)
		return w.Err()
	case cfg.tailFile != "":
		return tailTrace(ctx, cfg.tailFile, model, draw)
	default:
		return fmt.Errorf("-top needs -job ID (SSE mode) or -tail FILE (trace mode)")
	}
}

// tailTrace follows a JSONL trace file tail -f style: existing events are
// replayed, then the file is polled for growth until the run's end event
// arrives or ctx is cancelled. A torn final line (a write in progress) is
// retried on the next poll.
func tailTrace(ctx context.Context, path string, model *topModel, draw func(bool)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var buf []byte
	chunk := make([]byte, 64*1024)
	for {
		n, readErr := f.Read(chunk)
		buf = append(buf, chunk[:n]...)
		for {
			nl := strings.IndexByte(string(buf), '\n')
			if nl < 0 {
				break
			}
			line := strings.TrimSpace(string(buf[:nl]))
			buf = buf[nl+1:]
			if line == "" {
				continue
			}
			// Trace lines share the api.Event JSON layout; decode through
			// the trace schema first so corrupt values (negative
			// iterations, non-finite costs) are rejected with a clear
			// error instead of garbling the view.
			var te trace.Event
			if err := json.Unmarshal([]byte(line), &te); err != nil {
				return fmt.Errorf("malformed trace line: %w", err)
			}
			if err := te.Validate(); err != nil {
				return fmt.Errorf("invalid trace line: %w", err)
			}
			var e api.Event
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				return fmt.Errorf("malformed trace line: %w", err)
			}
			model.observe(e)
			draw(e.Kind != "iter")
			if e.Kind == "end" {
				draw(true)
				return nil
			}
		}
		if readErr == io.EOF {
			select {
			case <-ctx.Done():
				draw(true)
				return nil
			case <-time.After(200 * time.Millisecond):
			}
		} else if readErr != nil {
			return readErr
		}
	}
}
