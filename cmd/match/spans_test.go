package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"matchsim"
	"matchsim/api"
	"matchsim/client"
	"matchsim/internal/httpapi"
	"matchsim/internal/jobs"
	"matchsim/internal/telemetry"
)

// TestRunSpansRendersTree runs a traced job against an in-process daemon
// and checks the -spans view resolves both a job ID and a trace ID to
// the same indented span tree.
func TestRunSpansRendersTree(t *testing.T) {
	m := jobs.New(jobs.Options{
		Workers: 1,
		Tracer:  telemetry.NewTracer(telemetry.TracerOptions{Node: "n0"}),
	})
	ts := httptest.NewServer(httpapi.New(m))
	t.Cleanup(func() {
		ts.Close()
		m.Shutdown(context.Background())
	})

	p, err := matchsim.GeneratePaper(3, 10)
	if err != nil {
		t.Fatalf("GeneratePaper: %v", err)
	}
	var inst bytes.Buffer
	if err := p.WriteInstance(&inst); err != nil {
		t.Fatalf("WriteInstance: %v", err)
	}
	c := client.New(ts.URL)
	ctx := context.Background()
	info, err := c.Submit(ctx, api.SubmitRequest{
		Instance: inst.Bytes(), Solver: api.SolverMaTCH,
		Options: api.SolverOptions{Seed: 2, Workers: 1},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Wait(ctx, info.ID, 5*time.Millisecond); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	var byJob bytes.Buffer
	if err := runSpans(config{daemon: ts.URL, spansID: info.ID}, &byJob); err != nil {
		t.Fatalf("runSpans by job ID: %v", err)
	}
	out := byJob.String()
	for _, want := range []string{"trace " + info.TraceID, "job", "queue", "solve", "node=n0"} {
		if !strings.Contains(out, want) {
			t.Errorf("spans view missing %q:\n%s", want, out)
		}
	}
	// The solve span nests two levels under the job root.
	if !strings.Contains(out, "\n    solve") {
		t.Errorf("solve span not indented as a child:\n%s", out)
	}

	var byTrace bytes.Buffer
	if err := runSpans(config{daemon: ts.URL, spansID: info.TraceID}, &byTrace); err != nil {
		t.Fatalf("runSpans by trace ID: %v", err)
	}
	if byTrace.String() != out {
		t.Errorf("trace-ID view differs from job-ID view:\n%s\nvs\n%s", byTrace.String(), out)
	}
}
