// Span-tree view: `match -spans ID [-daemon URL]` fetches one trace from
// a matchd daemon's /v1/traces/{id} endpoint and renders it as an
// indented tree — span names, owning nodes, durations, statuses and
// event counts. ID is a 32-hex trace ID, or a job ID (the job's trace is
// looked up through GET /v1/jobs/{id}).
package main

import (
	"context"
	"fmt"
	"io"
	"regexp"
	"strings"
	"time"

	"matchsim/api"
	"matchsim/client"
)

var jobIDPattern = regexp.MustCompile(`^j[0-9a-f]{16}$`)

// runSpans resolves cfg.spansID to a trace and prints its span tree.
func runSpans(cfg config, out io.Writer) error {
	ctx := context.Background()
	c := client.New(cfg.daemon)

	traceID := cfg.spansID
	if jobIDPattern.MatchString(traceID) {
		info, err := c.Info(ctx, traceID)
		if err != nil {
			return fmt.Errorf("looking up job %s: %w", traceID, err)
		}
		if info.TraceID == "" {
			return fmt.Errorf("job %s carries no trace ID (tracing disabled on the daemon?)", traceID)
		}
		traceID = info.TraceID
	}

	doc, err := c.Trace(ctx, traceID)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace %s (%d spans)\n", doc.TraceID, doc.SpanCount)
	for i := range doc.Spans {
		printSpan(out, &doc.Spans[i], 0)
	}
	return nil
}

// printSpan renders one span line and recurses into its children.
func printSpan(out io.Writer, sp *api.Span, depth int) {
	indent := strings.Repeat("  ", depth)
	dur := time.Duration(sp.DurationNs).Round(time.Microsecond)
	line := fmt.Sprintf("%s%-*s %10v", indent, 28-len(indent), sp.Name, dur)
	if sp.Node != "" {
		line += "  node=" + sp.Node
	}
	if sp.Status != "" && sp.Status != "ok" {
		line += "  status=" + sp.Status
	}
	if n := len(sp.Events); n > 0 {
		line += fmt.Sprintf("  events=%d", n)
		if sp.DroppedEvents > 0 {
			line += fmt.Sprintf(" (+%d dropped)", sp.DroppedEvents)
		}
	}
	fmt.Fprintln(out, line)
	for i := range sp.Children {
		printSpan(out, &sp.Children[i], depth+1)
	}
}
