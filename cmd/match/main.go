// Command match maps a problem instance (JSON, see matchgen) onto its
// platform with a chosen solver and reports the mapping, its application
// execution time and the per-resource load breakdown.
//
// Usage:
//
//	matchgen -n 20 -seed 7 -out inst.json
//	match -in inst.json -solver match
//	match -in inst.json -solver ga -pop 500 -gens 1000
//	match -in inst.json -solver distributed -agents 4
//
// Solvers: match (default, the paper's CE heuristic), ga (FastMap-GA),
// distributed (agent-based MaTCH), random, greedy, local, anneal.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"matchsim"
	"matchsim/internal/trace"
)

func main() {
	var (
		in      = flag.String("in", "", "instance JSON file (default stdin)")
		solver  = flag.String("solver", "match", "match | ga | distributed | random | greedy | local | anneal")
		seed    = flag.Uint64("seed", 1, "solver seed")
		verbose = flag.Bool("v", false, "print per-iteration progress")
		// MaTCH / distributed knobs.
		samples  = flag.Int("samples", 0, "CE sample size N (default 2n^2)")
		rho      = flag.Float64("rho", 0, "CE focus parameter (default 0.05)")
		zeta     = flag.Float64("zeta", 0, "CE smoothing factor (default 0.3)")
		maxIters = flag.Int("max-iters", 0, "CE iteration cap (default 1000)")
		agentsN  = flag.Int("agents", 0, "distributed agent count (default GOMAXPROCS)")
		// GA knobs.
		pop  = flag.Int("pop", 0, "GA population size (default 500)")
		gens = flag.Int("gens", 0, "GA generations (default 1000)")
		// Baseline knobs.
		budget   = flag.Int("budget", 10000, "random-search samples")
		restarts = flag.Int("restarts", 5, "local-search restarts")
		// Validation / observability.
		simulate  = flag.Int("simulate", 0, "after mapping, execute this many supersteps on the discrete-event simulator")
		traceFile = flag.String("trace", "", "write a JSONL run trace to this file")
	)
	flag.Parse()

	if err := run(*in, *solver, *seed, *verbose, *samples, *rho, *zeta, *maxIters,
		*agentsN, *pop, *gens, *budget, *restarts, *simulate, *traceFile); err != nil {
		fmt.Fprintf(os.Stderr, "match: %v\n", err)
		os.Exit(1)
	}
}

func run(in, solver string, seed uint64, verbose bool,
	samples int, rho, zeta float64, maxIters, agentsN, pop, gens, budget, restarts, simulate int,
	traceFile string) error {

	var rd io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	problem, err := matchsim.ReadProblem(rd)
	if err != nil {
		return fmt.Errorf("reading instance: %w", err)
	}

	var tw *trace.Writer
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tw = trace.NewWriter(f)
		if err := tw.Start(solver, problem.NumTasks(), seed); err != nil {
			return err
		}
		defer tw.Flush()
	}

	var progress func(matchsim.IterationTrace)
	if verbose || tw != nil {
		progress = func(tr matchsim.IterationTrace) {
			if verbose {
				fmt.Fprintf(os.Stderr, "iter %4d  best=%.0f  gamma=%.0f  best-so-far=%.0f\n",
					tr.Iteration, tr.Best, tr.Gamma, tr.BestSoFar)
			}
			if tw != nil {
				tw.Iteration(tr.Iteration, tr.Gamma, tr.Best, tr.Mean, tr.BestSoFar)
			}
		}
	}

	var sol *matchsim.Solution
	switch solver {
	case "match":
		sol, err = matchsim.SolveMaTCH(problem, matchsim.MaTCHOptions{
			SampleSize: samples, Rho: rho, Zeta: zeta,
			MaxIterations: maxIters, Seed: seed, OnIteration: progress,
		})
	case "ga":
		sol, err = matchsim.SolveGA(problem, matchsim.GAOptions{
			PopulationSize: pop, Generations: gens, Seed: seed, OnGeneration: progress,
		})
	case "distributed":
		sol, err = matchsim.SolveDistributed(problem, matchsim.DistributedOptions{
			NumAgents: agentsN, SampleSize: samples, Rho: rho, Zeta: zeta,
			MaxIterations: maxIters, Seed: seed,
		})
	case "random":
		sol, err = matchsim.SolveRandom(problem, budget, seed)
	case "greedy":
		sol, err = matchsim.SolveGreedy(problem)
	case "local":
		sol, err = matchsim.SolveLocalSearch(problem, restarts, seed)
	case "anneal":
		sol, err = matchsim.SolveAnnealing(problem, matchsim.AnnealingOptions{Seed: seed})
	default:
		return fmt.Errorf("unknown solver %q", solver)
	}
	if err != nil {
		return err
	}

	if tw != nil {
		if err := tw.End(sol.Exec, sol.Iterations, sol.Evaluations, sol.MappingTime, "completed"); err != nil {
			return err
		}
	}

	fmt.Printf("solver:       %s\n", sol.Solver)
	fmt.Printf("exec (ET):    %.2f units\n", sol.Exec)
	fmt.Printf("mapping time: %v\n", sol.MappingTime.Round(time.Microsecond))
	if sol.Iterations > 0 {
		fmt.Printf("iterations:   %d\n", sol.Iterations)
	}
	fmt.Printf("evaluations:  %d\n", sol.Evaluations)
	fmt.Printf("mapping (task -> resource):\n")
	for task, res := range sol.Mapping {
		fmt.Printf("  task %-3d -> resource %d\n", task, res)
	}

	b, err := problem.Explain(sol.Mapping)
	if err != nil {
		return err
	}
	fmt.Printf("per-resource loads (busiest = resource %d, imbalance %.3f):\n", b.Busiest, b.Imbalance)
	for s, load := range b.Loads {
		fmt.Printf("  resource %-3d  load %10.2f  (compute %.2f + comm %.2f)\n",
			s, load, b.Compute[s], b.Comm[s])
	}

	if simulate > 0 {
		rep, err := matchsim.Simulate(problem, sol.Mapping, simulate)
		if err != nil {
			return err
		}
		fmt.Printf("simulated %d supersteps:\n", simulate)
		fmt.Printf("  analytic ET/step: %10.2f units\n", rep.AnalyticExec)
		fmt.Printf("  simulated step:   %10.2f units (model ratio %.3f)\n", rep.PerStep[0], rep.ModelRatio)
		fmt.Printf("  total makespan:   %10.2f units (%d events)\n", rep.Makespan, rep.Events)
	}
	return nil
}
