// Command match maps a problem instance (JSON, see matchgen) onto its
// platform with a chosen solver and reports the mapping, its application
// execution time and the per-resource load breakdown.
//
// Usage:
//
//	matchgen -n 20 -seed 7 -out inst.json
//	match -in inst.json -solver match
//	match -in inst.json -solver ga -pop 500 -gens 1000
//	match -in inst.json -solver distributed -agents 4
//	match -in inst.json -solver match -checkpoint run.ckpt
//	match -in inst.json -solver match -islands 4 -migrate-every 10 -blend-alpha 0.2
//	match -top -job j00000001 -daemon http://127.0.0.1:8080
//	match -top -tail run.jsonl
//	match -spans <trace-id or job-id> -daemon http://127.0.0.1:8080
//
// Solvers: match (default, the paper's CE heuristic), ga (FastMap-GA),
// distributed (agent-based MaTCH), random, greedy, local, anneal.
//
// With -checkpoint, a MaTCH run becomes interruptible: Ctrl-C (or
// SIGTERM) stops the CE loop within one iteration and saves its state to
// the file; re-running the same command resumes from it instead of
// starting over. The file is also written on normal completion so a
// finished run can later be extended with a larger -max-iters.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"matchsim"
	"matchsim/internal/trace"
)

// config carries every CLI knob into run (tests build it directly).
type config struct {
	in      string
	solver  string
	seed    uint64
	verbose bool
	// MaTCH / distributed knobs.
	samples  int
	rho      float64
	zeta     float64
	maxIters int
	agentsN  int
	// Large-instance knobs: the multilevel pipeline and the sparse-row
	// distribution update.
	multilevel   bool
	minCoarse    int
	coarsenRatio float64
	refinePasses int
	sparseEps    float64
	sparseCut    int
	// Island-model knobs (match solver): islands > 1 splits the run into
	// an ensemble of CE islands exchanging elites and blending P rows.
	islands        int
	islandTopology string
	migrateEvery   int
	migrants       int
	blendAlpha     float64
	// GA knobs.
	pop  int
	gens int
	// Baseline knobs.
	budget   int
	restarts int
	// Validation / observability.
	simulate  int
	traceFile string
	// checkpoint names a resumable snapshot file (MaTCH only): loaded at
	// start when present, written on interrupt and on completion.
	checkpoint string
	// matchtop knobs (see top.go): -top switches the command into the live
	// convergence view, fed either by a matchd job's SSE stream (-job,
	// -daemon) or by tailing a trace file (-tail).
	top      bool
	daemon   string
	topJob   string
	tailFile string
	// spansID switches the command into the trace-tree view (see
	// spans.go): fetch one trace from the daemon and print its spans.
	spansID string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.in, "in", "", "instance JSON file (default stdin)")
	flag.StringVar(&cfg.solver, "solver", "match", "match | ga | distributed | random | greedy | local | anneal")
	flag.Uint64Var(&cfg.seed, "seed", 1, "solver seed")
	flag.BoolVar(&cfg.verbose, "v", false, "print per-iteration progress")
	flag.IntVar(&cfg.samples, "samples", 0, "CE sample size N (default 2n^2)")
	flag.Float64Var(&cfg.rho, "rho", 0, "CE focus parameter (default 0.05)")
	flag.Float64Var(&cfg.zeta, "zeta", 0, "CE smoothing factor (default 0.3)")
	flag.IntVar(&cfg.maxIters, "max-iters", 0, "CE iteration cap (default 1000)")
	flag.IntVar(&cfg.agentsN, "agents", 0, "distributed agent count (default GOMAXPROCS)")
	flag.BoolVar(&cfg.multilevel, "multilevel", false, "solve through the multilevel coarsen/solve/refine pipeline (large instances)")
	flag.IntVar(&cfg.minCoarse, "min-coarse", 0, "multilevel: coarsest instance size (default 128)")
	flag.Float64Var(&cfg.coarsenRatio, "coarsen-ratio", 0, "multilevel: abort coarsening when a step keeps more than this vertex fraction (default 0.95)")
	flag.IntVar(&cfg.refinePasses, "refine-passes", 0, "multilevel: refinement passes per level (default 8)")
	flag.Float64Var(&cfg.sparseEps, "sparse-eps", 0, "sparse-row update: truncate row entries below this fraction of the row maximum (0 = dense update)")
	flag.IntVar(&cfg.sparseCut, "sparse-cut", 0, "sparse-row update: max tracked row support (default max(16, n/4); negative disables tracking)")
	flag.IntVar(&cfg.islands, "islands", 0, "island-model ensemble size I (match solver; 0/1 = single population)")
	flag.StringVar(&cfg.islandTopology, "island-topology", "", "island exchange topology: ring | all (default ring)")
	flag.IntVar(&cfg.migrateEvery, "migrate-every", 0, "islands: exchange interval in CE iterations (default 10)")
	flag.IntVar(&cfg.migrants, "migrants", 0, "islands: elite migrants sent per exchange (default 4; negative disables migration)")
	flag.Float64Var(&cfg.blendAlpha, "blend-alpha", 0, "islands: peer weight of the P-matrix row blend, in [0,1) (0 disables blending)")
	flag.IntVar(&cfg.pop, "pop", 0, "GA population size (default 500)")
	flag.IntVar(&cfg.gens, "gens", 0, "GA generations (default 1000)")
	flag.IntVar(&cfg.budget, "budget", 10000, "random-search samples")
	flag.IntVar(&cfg.restarts, "restarts", 5, "local-search restarts")
	flag.IntVar(&cfg.simulate, "simulate", 0, "after mapping, execute this many supersteps on the discrete-event simulator")
	flag.StringVar(&cfg.traceFile, "trace", "", "write a JSONL run trace to this file")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "MaTCH checkpoint file: resume from it if present, save on interrupt/finish")
	flag.BoolVar(&cfg.top, "top", false, "matchtop: render a live convergence view instead of solving (needs -job or -tail)")
	flag.StringVar(&cfg.daemon, "daemon", "http://127.0.0.1:8080", "matchd base URL for -top -job")
	flag.StringVar(&cfg.topJob, "job", "", "matchd job ID to watch with -top")
	flag.StringVar(&cfg.tailFile, "tail", "", "JSONL trace file to follow with -top")
	flag.StringVar(&cfg.spansID, "spans", "", "print a trace's span tree from the daemon; takes a trace ID or a job ID")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "match: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.top {
		return runTop(cfg)
	}
	if cfg.spansID != "" {
		return runSpans(cfg, os.Stdout)
	}
	var rd io.Reader = os.Stdin
	if cfg.in != "" {
		f, err := os.Open(cfg.in)
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	problem, err := matchsim.ReadProblem(rd)
	if err != nil {
		return fmt.Errorf("reading instance: %w", err)
	}

	if cfg.checkpoint != "" && cfg.solver != "match" {
		return fmt.Errorf("-checkpoint applies only to the match solver (got %q)", cfg.solver)
	}
	if cfg.islands > 1 && cfg.checkpoint != "" {
		return fmt.Errorf("-checkpoint cannot be combined with -islands (island ensembles are not resumable)")
	}
	if cfg.islands > 1 && cfg.solver != "match" {
		return fmt.Errorf("-islands applies only to the match solver (got %q)", cfg.solver)
	}

	var tw *trace.Writer
	if cfg.traceFile != "" {
		f, err := os.Create(cfg.traceFile)
		if err != nil {
			return err
		}
		tw = trace.NewWriter(f)
		if err := tw.Start(cfg.solver, problem.NumTasks(), cfg.seed); err != nil {
			return err
		}
		defer tw.Close()
	}

	var progress func(matchsim.IterationTrace)
	if cfg.verbose || tw != nil {
		progress = func(tr matchsim.IterationTrace) {
			if cfg.verbose {
				fmt.Fprintf(os.Stderr, "iter %4d  best=%.0f  gamma=%.0f  best-so-far=%.0f\n",
					tr.Iteration, tr.Best, tr.Gamma, tr.BestSoFar)
			}
			if tw != nil {
				tw.Iteration(traceEvent(tr))
			}
		}
	}

	var sol *matchsim.Solution
	switch cfg.solver {
	case "match":
		sol, err = runMatch(problem, cfg, progress)
	case "ga":
		sol, err = matchsim.SolveGA(problem, matchsim.GAOptions{
			PopulationSize: cfg.pop, Generations: cfg.gens, Seed: cfg.seed, OnGeneration: progress,
		})
	case "distributed":
		sol, err = matchsim.SolveDistributed(problem, matchsim.DistributedOptions{
			NumAgents: cfg.agentsN, SampleSize: cfg.samples, Rho: cfg.rho, Zeta: cfg.zeta,
			MaxIterations: cfg.maxIters, Seed: cfg.seed,
		})
	case "random":
		sol, err = matchsim.SolveRandom(problem, cfg.budget, cfg.seed)
	case "greedy":
		sol, err = matchsim.SolveGreedy(problem)
	case "local":
		sol, err = matchsim.SolveLocalSearch(problem, cfg.restarts, cfg.seed)
	case "anneal":
		sol, err = matchsim.SolveAnnealing(problem, matchsim.AnnealingOptions{Seed: cfg.seed})
	default:
		return fmt.Errorf("unknown solver %q", cfg.solver)
	}
	if err != nil {
		return err
	}

	if tw != nil {
		if err := tw.End(sol.Exec, sol.Iterations, sol.Evaluations, sol.MappingTime, sol.StopReason); err != nil {
			return err
		}
	}

	fmt.Printf("solver:       %s\n", sol.Solver)
	fmt.Printf("exec (ET):    %.2f units\n", sol.Exec)
	fmt.Printf("mapping time: %v\n", sol.MappingTime.Round(time.Microsecond))
	if sol.Iterations > 0 {
		fmt.Printf("iterations:   %d\n", sol.Iterations)
	}
	fmt.Printf("evaluations:  %d\n", sol.Evaluations)
	if len(sol.Levels) > 0 {
		fmt.Printf("levels (fine to coarse):\n")
		for i, lv := range sol.Levels {
			fmt.Printf("  level %-2d  n=%-6d m=%-7d exec=%-10.0f coarsen=%-9v solve=%-9v refine=%v (%d swaps)\n",
				i, lv.Tasks, lv.Edges, lv.Exec,
				time.Duration(lv.CoarsenNs).Round(time.Microsecond),
				time.Duration(lv.SolveNs).Round(time.Microsecond),
				time.Duration(lv.RefineNs).Round(time.Microsecond), lv.RefineSwaps)
		}
	}
	fmt.Printf("mapping (task -> resource):\n")
	for task, res := range sol.Mapping {
		fmt.Printf("  task %-3d -> resource %d\n", task, res)
	}

	b, err := problem.Explain(sol.Mapping)
	if err != nil {
		return err
	}
	fmt.Printf("per-resource loads (busiest = resource %d, imbalance %.3f):\n", b.Busiest, b.Imbalance)
	for s, load := range b.Loads {
		fmt.Printf("  resource %-3d  load %10.2f  (compute %.2f + comm %.2f)\n",
			s, load, b.Compute[s], b.Comm[s])
	}

	if cfg.simulate > 0 {
		rep, err := matchsim.Simulate(problem, sol.Mapping, cfg.simulate)
		if err != nil {
			return err
		}
		fmt.Printf("simulated %d supersteps:\n", cfg.simulate)
		fmt.Printf("  analytic ET/step: %10.2f units\n", rep.AnalyticExec)
		fmt.Printf("  simulated step:   %10.2f units (model ratio %.3f)\n", rep.PerStep[0], rep.ModelRatio)
		fmt.Printf("  total makespan:   %10.2f units (%d events)\n", rep.Makespan, rep.Events)
	}
	return nil
}

// traceEvent converts per-iteration solver telemetry to its trace-schema
// record, carrying the solver-internals block through to the JSONL file.
func traceEvent(tr matchsim.IterationTrace) trace.Event {
	return trace.Event{
		Iter:          tr.Iteration,
		Gamma:         tr.Gamma,
		Best:          tr.Best,
		Worst:         tr.Worst,
		Mean:          tr.Mean,
		BestSoFar:     tr.BestSoFar,
		Elite:         tr.EliteCount,
		Draws:         tr.Draws,
		Pruned:        tr.Pruned,
		Rescored:      tr.Rescored,
		RejectTries:   tr.RejectTries,
		FallbackDraws: tr.FallbackDraws,
		SkippedEdges:  tr.SkippedEdges,
		SampleNs:      tr.SampleNs,
		SelectNs:      tr.SelectNs,
		UpdateNs:      tr.UpdateNs,
		StealUnits:    tr.StealUnits,
		IdleNs:        tr.IdleNs,
		RebuiltRows:   tr.RebuiltRows,
		SkippedRows:   tr.SkippedRows,
		Island:        tr.Island,
		MigrantsIn:    tr.MigrantsIn,
		MigrantsOut:   tr.MigrantsOut,
		BlendRounds:   tr.BlendRounds,
	}
}

// runMatch runs the MaTCH solver with optional checkpointing: the run
// resumes from cfg.checkpoint when the file exists, stops cleanly on
// SIGINT/SIGTERM, and saves its state back on interrupt and on finish.
func runMatch(problem *matchsim.Problem, cfg config, progress func(matchsim.IterationTrace)) (*matchsim.Solution, error) {
	opts := matchsim.MaTCHOptions{
		SampleSize: cfg.samples, Rho: cfg.rho, Zeta: cfg.zeta,
		MaxIterations: cfg.maxIters, Seed: cfg.seed, OnIteration: progress,
		SparseEps: cfg.sparseEps, SparseCut: cfg.sparseCut,
	}
	if cfg.multilevel {
		opts.Multilevel = &matchsim.MultilevelOptions{
			MinCoarse:    cfg.minCoarse,
			CoarsenRatio: cfg.coarsenRatio,
			RefinePasses: cfg.refinePasses,
		}
	}
	if cfg.islands > 1 {
		opts.Islands = &matchsim.IslandOptions{
			Count:        cfg.islands,
			Topology:     cfg.islandTopology,
			MigrateEvery: cfg.migrateEvery,
			MigrantCount: cfg.migrants,
			BlendAlpha:   cfg.blendAlpha,
		}
	}
	if cfg.checkpoint == "" {
		return matchsim.SolveMaTCH(problem, opts)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Context = ctx

	var sol *matchsim.Solution
	var err error
	if data, readErr := os.ReadFile(cfg.checkpoint); readErr == nil {
		ckpt, decErr := matchsim.DecodeCheckpoint(data)
		if decErr != nil {
			return nil, fmt.Errorf("loading checkpoint %s: %w", cfg.checkpoint, decErr)
		}
		fmt.Fprintf(os.Stderr, "match: resuming from %s (%d iterations banked)\n", cfg.checkpoint, ckpt.Iterations)
		sol, err = matchsim.ResumeMaTCH(problem, ckpt, opts)
	} else if os.IsNotExist(readErr) {
		sol, err = matchsim.SolveMaTCH(problem, opts)
	} else {
		return nil, readErr
	}
	if err != nil {
		return nil, err
	}

	if ckpt := sol.Checkpoint(); ckpt != nil {
		data, encErr := ckpt.Encode()
		if encErr != nil {
			return nil, encErr
		}
		if writeErr := os.WriteFile(cfg.checkpoint, data, 0o644); writeErr != nil {
			return nil, fmt.Errorf("saving checkpoint: %w", writeErr)
		}
		if sol.StopReason == matchsim.StopCancelled {
			fmt.Fprintf(os.Stderr, "match: interrupted after %d iterations; state saved to %s (re-run to resume)\n",
				sol.Iterations, cfg.checkpoint)
		}
	}
	return sol, nil
}
