package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"matchsim/api"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Errorf("empty input: %q, want empty", got)
	}
	if got := sparkline([]float64{1, 2, 3}, 0); got != "" {
		t.Errorf("zero width: %q, want empty", got)
	}
	// A monotone ramp must start at the lowest block and end at the highest.
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp: %q, want full block ramp", got)
	}
	// Flat input renders mid-blocks, not a divide-by-zero artifact.
	flat := sparkline([]float64{5, 5, 5}, 8)
	if strings.ContainsAny(flat, "▁█") || len([]rune(flat)) != 3 {
		t.Errorf("flat: %q, want three mid-height blocks", flat)
	}
	// Width caps the window to the most recent values.
	tail := sparkline([]float64{9, 9, 9, 0, 8}, 2)
	if tail != "▁█" {
		t.Errorf("window: %q, want last two values scaled", tail)
	}
}

func TestTopModelObserveAndRender(t *testing.T) {
	m := &topModel{}
	m.observe(api.Event{Kind: "start", Solver: "match", Tasks: 24, Seed: 7})
	m.observe(api.Event{
		Kind: "iter", Iter: 0, Best: 120, BestSoFar: 120, Gamma: 150,
		Elite: 12, Draws: 1000, Pruned: 600, Rescored: 4,
		RejectTries: 1500, FallbackDraws: 10,
		SampleNs: 2_000_000, SelectNs: 100_000, UpdateNs: 50_000,
		StealUnits: 3, IdleNs: 400_000,
	})
	m.observe(api.Event{Kind: "iter", Iter: 1, Best: 110, BestSoFar: 110, Gamma: 130, Draws: 1000})

	frame := m.render()
	for _, want := range []string{
		"match", "tasks=24", "seed=7", "[running]",
		"iter 1", "best-so-far", "gamma",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if len(m.bestHist) != 2 || m.bestHist[1] != 110 {
		t.Errorf("bestHist = %v, want [120 110]", m.bestHist)
	}

	m.observe(api.Event{Kind: "end", Exec: 109.5, Iterations: 2, Evaluations: 2000,
		MappingTime: 3_000_000, StopReason: "argmax-stable"})
	frame = m.render()
	if !strings.Contains(frame, "[finished]") || !strings.Contains(frame, "argmax-stable") {
		t.Errorf("end frame missing terminal state:\n%s", frame)
	}

	// A fresh start event resets the model for the next run on the stream.
	m.observe(api.Event{Kind: "start", Solver: "ga", Tasks: 8, Seed: 1})
	if m.iters != 0 || m.end != nil || len(m.bestHist) != 0 {
		t.Errorf("start did not reset model: iters=%d end=%v hist=%v", m.iters, m.end, m.bestHist)
	}
}

func TestTopModelRenderPhaseAndPruneLines(t *testing.T) {
	m := &topModel{}
	m.observe(api.Event{Kind: "start", Solver: "match", Tasks: 10, Seed: 2})
	m.observe(api.Event{
		Kind: "iter", Draws: 200, Pruned: 100, RejectTries: 300,
		SampleNs: 1_000_000, SelectNs: 1_000, UpdateNs: 1_000,
	})
	frame := m.render()
	if !strings.Contains(frame, "pruned  50.0% of draws") {
		t.Errorf("frame missing prune ratio:\n%s", frame)
	}
	if !strings.Contains(frame, "reject 1.50/draw") {
		t.Errorf("frame missing reject rate:\n%s", frame)
	}
	if !strings.Contains(frame, "phases  sample 1ms") {
		t.Errorf("frame missing phase timings:\n%s", frame)
	}
	// GA generations carry no phase timings; the line must be absent.
	m.observe(api.Event{Kind: "iter", Draws: 200})
	if frame = m.render(); strings.Contains(frame, "phases") {
		t.Errorf("phase line rendered without timings:\n%s", frame)
	}
}

// TestTailTraceReplaysFile feeds a complete recorded trace through the
// tail follower and checks the model saw every event and the follower
// returned at the end marker without waiting for more data.
func TestTailTraceReplaysFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	lines := []string{
		`{"kind":"start","solver":"match","tasks":12,"seed":5}`,
		`{"kind":"iter","iter":0,"gamma":90,"best":80,"best_so_far":80,"draws":288}`,
		`{"kind":"iter","iter":1,"gamma":85,"best":78,"best_so_far":78,"draws":288}`,
		`{"kind":"end","exec":77.5,"iterations":2,"evaluations":576,"stop_reason":"argmax-stable"}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := &topModel{}
	var draws int
	err := tailTrace(context.Background(), path, m, func(bool) { draws++ })
	if err != nil {
		t.Fatalf("tailTrace: %v", err)
	}
	if m.iters != 2 || m.end == nil || m.solver != "match" {
		t.Errorf("model state iters=%d end=%v solver=%q, want full replay", m.iters, m.end, m.solver)
	}
	if m.end.Exec != 77.5 {
		t.Errorf("end exec = %v, want 77.5", m.end.Exec)
	}
	if draws == 0 {
		t.Error("draw callback never invoked")
	}
}

func TestTailTraceMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{not json}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := tailTrace(context.Background(), path, &topModel{}, func(bool) {}); err == nil {
		t.Fatal("tailTrace accepted a malformed line")
	}
}

func TestFrameWriterNonTTYAppends(t *testing.T) {
	var sb strings.Builder
	fw := &frameWriter{out: &sb, tty: false}
	fw.draw("a\nb\n")
	fw.draw("c\n")
	out := sb.String()
	if strings.Contains(out, "\x1b[") {
		t.Errorf("non-TTY output contains ANSI escapes: %q", out)
	}
	if !strings.Contains(out, "a\nb\n") || !strings.Contains(out, "c\n") {
		t.Errorf("frames not appended: %q", out)
	}
}

func TestFrameWriterTTYRedrawsInPlace(t *testing.T) {
	var sb strings.Builder
	fw := &frameWriter{out: &sb, tty: true}
	fw.draw("a\nb\n")
	fw.draw("c\n")
	out := sb.String()
	if !strings.Contains(out, "\x1b[2A\x1b[J") {
		t.Errorf("second frame did not rewind over the first: %q", out)
	}
}
