package main

import (
	"os"
	"path/filepath"
	"testing"

	"matchsim"
	"matchsim/internal/trace"
)

// writeInstance produces a small instance file for the CLI to consume.
func writeInstance(t *testing.T) string {
	t.Helper()
	p, err := matchsim.GeneratePaper(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := p.WriteInstance(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// fastCfg is the small-budget configuration the solver table tests share.
func fastCfg(in, solver string) config {
	return config{
		in: in, solver: solver, seed: 1,
		samples: 128, rho: 0.1, zeta: 0.5, maxIters: 30,
		agentsN: 2, pop: 20, gens: 20,
		budget: 200, restarts: 2, simulate: 2,
	}
}

func TestRunAllSolvers(t *testing.T) {
	path := writeInstance(t)
	for _, solver := range []string{"match", "ga", "distributed", "random", "greedy", "local", "anneal"} {
		if err := run(fastCfg(path, solver)); err != nil {
			t.Fatalf("solver %s: %v", solver, err)
		}
	}
}

func TestRunUnknownSolver(t *testing.T) {
	path := writeInstance(t)
	if err := run(config{in: path, solver: "bogus", seed: 1, budget: 100, restarts: 1}); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(config{in: "/nonexistent/instance.json", solver: "match", seed: 1}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunCorruptInstance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(config{in: path, solver: "match", seed: 1}); err == nil {
		t.Fatal("corrupt instance accepted")
	}
}

func TestRunWritesTrace(t *testing.T) {
	path := writeInstance(t)
	traceOut := filepath.Join(t.TempDir(), "run.trace")
	cfg := fastCfg(path, "match")
	cfg.maxIters = 10
	cfg.simulate = 0
	cfg.traceFile = traceOut
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runs, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("trace runs %d", len(runs))
	}
	if runs[0].Start.Solver != "match" || runs[0].End == nil {
		t.Fatalf("trace malformed: %+v", runs[0].Start)
	}
	if len(runs[0].Iterations) == 0 {
		t.Fatal("no iteration events recorded")
	}
}

// TestCheckpointSaveAndResume drives the -checkpoint flag: a completed
// run saves a decodable snapshot, and a re-run resumes from it without
// error.
func TestCheckpointSaveAndResume(t *testing.T) {
	path := writeInstance(t)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := fastCfg(path, "match")
	cfg.simulate = 0
	cfg.maxIters = 10
	cfg.checkpoint = ckpt
	if err := run(cfg); err != nil {
		t.Fatalf("first run: %v", err)
	}

	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	c, err := matchsim.DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("checkpoint not decodable: %v", err)
	}
	if c.Iterations == 0 {
		t.Error("checkpoint banked no iterations")
	}

	// Second invocation resumes from the file and extends the run.
	cfg.maxIters = 5
	if err := run(cfg); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	data2, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint not rewritten: %v", err)
	}
	c2, err := matchsim.DecodeCheckpoint(data2)
	if err != nil {
		t.Fatalf("rewritten checkpoint not decodable: %v", err)
	}
	if c2.Iterations == 0 {
		t.Error("rewritten checkpoint banked no iterations")
	}
}

// TestCheckpointCorruptFile checks a damaged checkpoint fails loudly
// rather than silently restarting.
func TestCheckpointCorruptFile(t *testing.T) {
	path := writeInstance(t)
	ckpt := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(ckpt, []byte(`{"iterations": 1`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(path, "match")
	cfg.checkpoint = ckpt
	if err := run(cfg); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestCheckpointRejectsNonMatchSolver checks the flag is refused outside
// the MaTCH solver.
func TestCheckpointRejectsNonMatchSolver(t *testing.T) {
	path := writeInstance(t)
	cfg := fastCfg(path, "ga")
	cfg.checkpoint = filepath.Join(t.TempDir(), "x.ckpt")
	if err := run(cfg); err == nil {
		t.Fatal("-checkpoint with ga accepted")
	}
}
