package main

import (
	"os"
	"path/filepath"
	"testing"

	"matchsim"
	"matchsim/internal/trace"
)

// writeInstance produces a small instance file for the CLI to consume.
func writeInstance(t *testing.T) string {
	t.Helper()
	p, err := matchsim.GeneratePaper(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := p.WriteInstance(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllSolvers(t *testing.T) {
	path := writeInstance(t)
	for _, solver := range []string{"match", "ga", "distributed", "random", "greedy", "local", "anneal"} {
		// Small budgets keep the test fast.
		err := run(path, solver, 1, false, 128, 0.1, 0.5, 30, 2, 20, 20, 200, 2, 2, "")
		if err != nil {
			t.Fatalf("solver %s: %v", solver, err)
		}
	}
}

func TestRunUnknownSolver(t *testing.T) {
	path := writeInstance(t)
	if err := run(path, "bogus", 1, false, 0, 0, 0, 0, 0, 0, 0, 100, 1, 0, ""); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent/instance.json", "match", 1, false, 0, 0, 0, 0, 0, 0, 0, 100, 1, 0, ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunCorruptInstance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "match", 1, false, 0, 0, 0, 0, 0, 0, 0, 100, 1, 0, ""); err == nil {
		t.Fatal("corrupt instance accepted")
	}
}

func TestRunWritesTrace(t *testing.T) {
	path := writeInstance(t)
	traceOut := filepath.Join(t.TempDir(), "run.trace")
	if err := run(path, "match", 1, false, 128, 0.1, 0.5, 10, 0, 0, 0, 100, 1, 0, traceOut); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runs, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("trace runs %d", len(runs))
	}
	if runs[0].Start.Solver != "match" || runs[0].End == nil {
		t.Fatalf("trace malformed: %+v", runs[0].Start)
	}
	if len(runs[0].Iterations) == 0 {
		t.Fatal("no iteration events recorded")
	}
}
