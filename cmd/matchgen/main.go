// Command matchgen generates mapping problem instances as JSON files
// consumable by the match CLI.
//
// Usage:
//
//	matchgen -kind paper -n 30 -seed 7 -out instance.json
//	matchgen -kind overset -n 24 -seed 3            # writes to stdout
//	matchgen -kind clustered -clusters 4 -per 5
//
// Kinds:
//
//	paper      the paper's Section 5.2 synthetic generator (default)
//	overset    overset-grid CFD workload on a paper-style platform
//	clustered  paper-style TIG on a federation of homogeneous clusters
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"matchsim"
)

func main() {
	var (
		kind     = flag.String("kind", "paper", "instance kind: paper | overset | clustered")
		n        = flag.Int("n", 20, "tasks/resources (paper, overset)")
		clusters = flag.Int("clusters", 3, "clusters (clustered kind)")
		per      = flag.Int("per", 4, "resources per cluster (clustered kind)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	if err := run(*kind, *n, *clusters, *per, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "matchgen: %v\n", err)
		os.Exit(1)
	}
}

func run(kind string, n, clusters, per int, seed uint64, out string) error {
	var (
		problem *matchsim.Problem
		err     error
	)
	switch kind {
	case "paper":
		problem, err = matchsim.GeneratePaper(seed, n)
	case "overset":
		problem, err = matchsim.GenerateOverset(seed, matchsim.OversetConfig{NumGrids: n})
	case "clustered":
		problem, err = matchsim.GenerateClustered(seed, matchsim.ClusteredPlatformConfig{
			Clusters: clusters, PerCluster: per,
		})
	default:
		return fmt.Errorf("unknown kind %q (want paper, overset or clustered)", kind)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := problem.WriteInstance(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s instance: %d tasks, %d resources (seed %d)\n",
		kind, problem.NumTasks(), problem.NumResources(), seed)
	return nil
}
