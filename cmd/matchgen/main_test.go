package main

import (
	"os"
	"path/filepath"
	"testing"

	"matchsim"
)

func TestRunGeneratesLoadableInstances(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"paper", "overset", "clustered"} {
		out := filepath.Join(dir, kind+".json")
		if err := run(kind, 10, 2, 5, 3, out); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		p, err := matchsim.ReadProblem(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: reading back: %v", kind, err)
		}
		if p.NumTasks() != 10 {
			t.Fatalf("%s: %d tasks, want 10", kind, p.NumTasks())
		}
	}
}

func TestRunRejectsUnknownKind(t *testing.T) {
	if err := run("bogus", 5, 1, 1, 1, ""); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := run("paper", 0, 1, 1, 1, ""); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestRunClusteredShape(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c.json")
	if err := run("clustered", 0, 3, 4, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := matchsim.ReadProblem(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumResources() != 12 {
		t.Fatalf("clustered resources %d, want 3*4", p.NumResources())
	}
}
