package main

import (
	"fmt"
	"os"
	"time"

	"matchsim/internal/core"
	"matchsim/internal/cost"
	"matchsim/internal/gen"
)

// scaleCase is one row of the scale experiment: a paper instance of n
// tasks solved for a fixed iteration budget (stall stops disabled so every
// arm does identical work), repeated reps times keeping the fastest run —
// min-of-reps is the standard estimator for wall clock on a noisy box.
type scaleCase struct {
	n     int
	iters int
	reps  int
}

// prePRBaselineNs records the fused Solve wall clock at commit ce54eb4 —
// the state of the hot loop before the persistent-pool/alias/pruning
// scaling pass — measured on the same single-core reference machine with
// the exact scaleCase budgets below (instance seed 2005, solver seed 7).
// They are constants rather than re-measured because the old code no
// longer exists in the tree; treat them as ±10% (the box's timer noise).
var prePRBaselineNs = map[int]int64{
	64:  3_348_509_509,
	128: 23_602_904_726,
	256: 110_724_348_555,
}

// runScale measures end-to-end Solve wall clock at large n with pruning
// on (the default) and off, verifies both arms return identical mappings,
// and — with -json — writes BENCH_scale.json including the recorded
// pre-optimisation baselines and the speedup against them.
func runScale(seed uint64, quick, jsonOut, quiet bool) error {
	cases := []scaleCase{{64, 40, 3}, {128, 25, 3}, {256, 8, 1}}
	if quick {
		cases = []scaleCase{{16, 20, 1}, {32, 10, 1}}
	}

	// Untimed warmup: the first solve in a fresh process pays page-fault
	// and frequency-ramp costs that would otherwise land entirely on the
	// first measured arm.
	if warm, err := gen.PaperInstance(seed, 32, gen.DefaultPaperConfig()); err == nil {
		if we, err := cost.NewEvaluator(warm.TIG, warm.Platform); err == nil {
			_, _ = core.Solve(we, core.Options{Seed: 7, MaxIterations: 10,
				StallC: 1 << 30, GammaStallWindow: 1 << 30})
		}
	}

	var recs []benchRecord
	for _, c := range cases {
		inst, err := gen.PaperInstance(seed, c.n, gen.DefaultPaperConfig())
		if err != nil {
			return err
		}
		eval, err := cost.NewEvaluator(inst.TIG, inst.Platform)
		if err != nil {
			return err
		}

		type armResult struct {
			minNs   int64
			exec    float64
			mapping []int
		}
		arms := []struct {
			name     string
			unpruned bool
		}{{"solve-pruned", false}, {"solve-unpruned", true}}
		results := make([]armResult, len(arms))
		for rep := 0; rep < c.reps; rep++ {
			// Interleave the arms within each repeat so slow drifts in
			// machine load hit both equally.
			for i, arm := range arms {
				start := time.Now()
				res, err := core.Solve(eval, core.Options{
					Seed:             7,
					MaxIterations:    c.iters,
					StallC:           1 << 30,
					GammaStallWindow: 1 << 30,
					UnprunedScoring:  arm.unpruned,
				})
				if err != nil {
					return err
				}
				ns := time.Since(start).Nanoseconds()
				if rep == 0 || ns < results[i].minNs {
					results[i].minNs = ns
				}
				results[i].exec = res.Exec
				results[i].mapping = res.Mapping
				if !quiet {
					fmt.Fprintf(os.Stderr, "scale n=%-4d %-14s rep=%d %12d ns  exec=%g\n",
						c.n, arm.name, rep, ns, res.Exec)
				}
			}
		}

		// Pruning is a pure strength reduction: identical mappings at a
		// fixed (seed, workers) pair or the optimisation is wrong.
		p, u := results[0], results[1]
		if p.exec != u.exec || !sameMapping(p.mapping, u.mapping) {
			return fmt.Errorf("scale n=%d: pruned exec %g != unpruned %g (or mappings diverge)",
				c.n, p.exec, u.exec)
		}

		for i, arm := range arms {
			rec := benchRecord{
				Name:    arm.name,
				Size:    c.n,
				Solver:  "MaTCH",
				ET:      results[i].exec,
				NsPerOp: results[i].minNs,
			}
			if base, ok := prePRBaselineNs[c.n]; ok && seed == 2005 {
				rec.SpeedupVsBaseline = float64(base) / float64(results[i].minNs)
			}
			recs = append(recs, rec)
		}
		if base, ok := prePRBaselineNs[c.n]; ok && seed == 2005 {
			recs = append(recs, benchRecord{
				Name: "solve-prepr-fused", Size: c.n, Solver: "MaTCH", NsPerOp: base,
			})
		}
	}

	fmt.Printf("%-18s %6s %14s %10s %10s\n", "benchmark", "n", "ns/op", "exec", "speedup")
	for _, r := range recs {
		speedup := ""
		if r.SpeedupVsBaseline > 0 {
			speedup = fmt.Sprintf("%.2fx", r.SpeedupVsBaseline)
		}
		fmt.Printf("%-18s %6d %14d %10g %10s\n", r.Name, r.Size, r.NsPerOp, r.ET, speedup)
	}

	if jsonOut {
		return writeBenchJSON("scale", recs)
	}
	return nil
}

func sameMapping(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
