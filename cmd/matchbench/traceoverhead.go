package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"reflect"
	"time"

	"matchsim"
	"matchsim/api"
	"matchsim/internal/jobs"
	"matchsim/internal/telemetry"
)

// runTraceOverhead measures what always-on span tracing costs a solve:
// the same instance and seed run through the jobs manager with and
// without a tracer, repeated and compared on the minimum solver wall
// time (the minimum isolates the code-path cost from scheduler noise).
// The traced and untraced arms must produce bit-identical mappings —
// tracing observes the solver, it must never perturb it — and the
// overhead must stay under maxOverhead (the CI guard exits 1 otherwise).
func runTraceOverhead(seed uint64, quick, jsonOut, quiet bool, maxOverhead float64) error {
	n, repeats := 64, 5
	if quick {
		n, repeats = 32, 3
	}
	progress := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	p, err := matchsim.GeneratePaper(seed, n)
	if err != nil {
		return err
	}
	var inst bytes.Buffer
	if err := p.WriteInstance(&inst); err != nil {
		return err
	}
	req := api.SubmitRequest{
		Instance: inst.Bytes(), Solver: api.SolverMaTCH,
		Options: api.SolverOptions{Seed: seed, Workers: 1},
	}

	solveArm := func(arm string, traced bool) (api.JobResult, error) {
		var tracer *telemetry.Tracer
		if traced {
			tracer = telemetry.NewTracer(telemetry.TracerOptions{Node: "bench"})
		}
		m := jobs.New(jobs.Options{
			Workers: 1, CacheCapacity: -1, Tracer: tracer,
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		res, err := solveOnce(m, req)
		_ = m.Shutdown(context.Background())
		if err != nil {
			return api.JobResult{}, fmt.Errorf("%s arm: %w", arm, err)
		}
		return res, nil
	}

	// The arms interleave (off, on, off, on, ...) so load and frequency
	// drift hit both equally; min-of-repeats then isolates the code-path
	// cost from scheduler noise.
	var offWall, onWall time.Duration
	var offRes, onRes api.JobResult
	for r := 0; r < repeats; r++ {
		off, err := solveArm("untraced", false)
		if err != nil {
			return err
		}
		on, err := solveArm("traced", true)
		if err != nil {
			return err
		}
		if r == 0 {
			offRes, onRes = off, on
		}
		if !reflect.DeepEqual(off.Mapping, offRes.Mapping) || !reflect.DeepEqual(on.Mapping, onRes.Mapping) {
			return fmt.Errorf("repeat %d diverged from repeat 0 (solver must be deterministic)", r)
		}
		if offWall == 0 || off.MappingTime < offWall {
			offWall = off.MappingTime
		}
		if onWall == 0 || on.MappingTime < onWall {
			onWall = on.MappingTime
		}
		progress("trace-overhead: repeat %d/%d: untraced %v, traced %v", r+1, repeats, off.MappingTime, on.MappingTime)
	}
	if !reflect.DeepEqual(offRes.Mapping, onRes.Mapping) || offRes.Exec != onRes.Exec {
		return fmt.Errorf("tracing perturbed the solver: untraced exec %v != traced exec %v", offRes.Exec, onRes.Exec)
	}

	overhead := float64(onWall)/float64(offWall) - 1
	fmt.Printf("trace overhead (n=%d, min of %d solves)\n", n, repeats)
	fmt.Printf("  untraced: %v\n", offWall)
	fmt.Printf("  traced:   %v\n", onWall)
	fmt.Printf("  overhead: %+.2f%% (results bit-identical)\n", overhead*100)

	if jsonOut {
		recs := []benchRecord{
			{Name: "solve-untraced", Size: n, NsPerOp: offWall.Nanoseconds(), ET: offRes.Exec},
			{Name: "solve-traced", Size: n, NsPerOp: onWall.Nanoseconds(), ET: onRes.Exec},
		}
		if err := writeBenchJSON("trace_overhead", recs); err != nil {
			return err
		}
	}
	if maxOverhead > 0 && overhead > maxOverhead {
		return fmt.Errorf("tracing overhead %.2f%% exceeds the %.2f%% budget", overhead*100, maxOverhead*100)
	}
	return nil
}

// solveOnce submits req and polls the manager until the job lands,
// returning its result.
func solveOnce(m *jobs.Manager, req api.SubmitRequest) (api.JobResult, error) {
	info, err := m.Submit(req)
	if err != nil {
		return api.JobResult{}, err
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		cur, err := m.Info(info.ID)
		if err != nil {
			return api.JobResult{}, err
		}
		if api.TerminalState(cur.State) {
			if cur.State != api.StateDone {
				return api.JobResult{}, fmt.Errorf("job ended %q: %s", cur.State, cur.Error)
			}
			return m.Result(info.ID)
		}
		if time.Now().After(deadline) {
			return api.JobResult{}, fmt.Errorf("job %s did not finish", info.ID)
		}
		time.Sleep(time.Millisecond)
	}
}
