package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// regressionTolerance is how much slower (ns/op) a kernel may measure
// against the committed baseline before the CI guard fails. 25% absorbs
// scheduler noise on shared runners while still catching real constant-
// factor regressions, which historically show up as 2x+.
const regressionTolerance = 1.25

// regressionSlackNs is an absolute grace on top of the relative
// tolerance: timer granularity and benchloop overhead jitter by a few
// hundred nanoseconds regardless of kernel size, which is invisible on a
// 20µs kernel but half the measurement on a 500ns one.
const regressionSlackNs = 500.0

// compareKernel checks freshly measured kernel micro-benchmarks against a
// committed BENCH_kernel.json. Benchmarks present only on one side are
// reported but never fail the guard (renames and new kernels must not
// break CI); a missing baseline file skips the whole check so the guard
// is a no-op on branches that predate the artefact.
func compareKernel(recs []benchRecord, path string, quiet bool) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		fmt.Printf("bench-compare: baseline %s missing; skipping regression check\n", path)
		return nil
	}
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench-compare: parse %s: %w", path, err)
	}
	baseline := make(map[string]int64, len(base.Records))
	for _, r := range base.Records {
		if r.NsPerOp > 0 {
			baseline[r.Name] = r.NsPerOp
		}
	}

	var regressions []string
	for _, r := range recs {
		was, ok := baseline[r.Name]
		if !ok {
			if !quiet {
				fmt.Printf("bench-compare: %-24s no baseline entry; skipped\n", r.Name)
			}
			continue
		}
		ratio := float64(r.NsPerOp) / float64(was)
		status := "ok"
		if ratio > regressionTolerance &&
			float64(r.NsPerOp) > float64(was)*regressionTolerance+regressionSlackNs {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d ns/op vs baseline %d (%.2fx)", r.Name, r.NsPerOp, was, ratio))
		}
		fmt.Printf("bench-compare: %-24s %12d ns/op  baseline %12d  %5.2fx  %s\n",
			r.Name, r.NsPerOp, was, ratio, status)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench-compare: %d kernel(s) regressed >%.0f%%:\n  %s",
			len(regressions), (regressionTolerance-1)*100, joinLines(regressions))
	}
	fmt.Printf("bench-compare: %d kernel(s) within %.0f%% of %s\n",
		len(recs), (regressionTolerance-1)*100, path)
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
