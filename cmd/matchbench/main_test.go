package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 1, 0, true, false, false, 0, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunQuickFig3(t *testing.T) {
	if err := run("fig3", 1, 0, true, false, false, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickAblationRho(t *testing.T) {
	if err := run("ablation-rho", 1, 0, true, false, false, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickTable3CSV(t *testing.T) {
	if err := run("table3", 1, 8, true, true, false, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickSweepTables(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep tables take several seconds")
	}
	if err := run("table1", 1, 0, true, false, false, 0, true); err != nil {
		t.Fatal(err)
	}
}

// TestBenchJSONRoundTrip exercises the BENCH_<name>.json writer schema.
func TestBenchJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	recs := []benchRecord{
		{Name: "solve-fused", Size: 64, Solver: "MaTCH", NsPerOp: 123456, AllocsPerOp: 42},
		{Name: "table1", Size: 10, Solver: "FastMapGA", ET: 987.5, NsPerOp: 5555},
	}
	if err := writeBenchJSON("roundtrip", recs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_roundtrip.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "roundtrip" || len(doc.Records) != 2 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if doc.Records[0] != recs[0] || doc.Records[1] != recs[1] {
		t.Fatalf("records did not round-trip: %+v", doc.Records)
	}
}
