package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 1, 0, true, false, false, 0, true, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunQuickFig3(t *testing.T) {
	if err := run("fig3", 1, 0, true, false, false, 0, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickAblationRho(t *testing.T) {
	if err := run("ablation-rho", 1, 0, true, false, false, 0, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickTable3CSV(t *testing.T) {
	if err := run("table3", 1, 8, true, true, false, 0, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickSweepTables(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep tables take several seconds")
	}
	if err := run("table1", 1, 0, true, false, false, 0, true, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunQuickScale exercises the scale experiment end to end at reduced
// sizes, including the pruned-vs-unpruned identical-mapping check.
func TestRunQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale runs two full solves per size")
	}
	if err := run("scale", 1, 0, true, false, false, 0, true, ""); err != nil {
		t.Fatal(err)
	}
}

// TestCompareKernel covers the CI regression guard: a missing baseline
// skips, a within-tolerance measurement passes, a >25% regression fails
// with the offending kernel named, and sub-microsecond kernels get the
// absolute slack on top of the relative gate.
func TestCompareKernel(t *testing.T) {
	recs := []benchRecord{{Name: "genperm-fast-alias", NsPerOp: 100000}}

	if err := compareKernel(recs, filepath.Join(t.TempDir(), "nope.json"), true); err != nil {
		t.Fatalf("missing baseline must skip, got %v", err)
	}

	dir := t.TempDir()
	write := func(ns int64) string {
		doc := benchFile{Bench: "kernel", Records: []benchRecord{{Name: "genperm-fast-alias", NsPerOp: ns}}}
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "BENCH_kernel.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if err := compareKernel(recs, write(90000), true); err != nil {
		t.Fatalf("1.11x must pass the 25%% gate, got %v", err)
	}
	err := compareKernel(recs, write(70000), true)
	if err == nil || !strings.Contains(err.Error(), "genperm-fast-alias") {
		t.Fatalf("1.43x must fail naming the kernel, got %v", err)
	}
	// 649 vs 476 is 1.36x but inside the 500ns absolute slack: timer
	// jitter on a sub-microsecond kernel must not fail CI.
	tiny := []benchRecord{{Name: "exec-after-swap", NsPerOp: 649}}
	tinyDoc := benchFile{Bench: "kernel", Records: []benchRecord{{Name: "exec-after-swap", NsPerOp: 476}}}
	tinyData, err := json.Marshal(tinyDoc)
	if err != nil {
		t.Fatal(err)
	}
	tinyPath := filepath.Join(dir, "BENCH_tiny.json")
	if err := os.WriteFile(tinyPath, tinyData, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareKernel(tiny, tinyPath, true); err != nil {
		t.Fatalf("sub-microsecond jitter must pass via absolute slack, got %v", err)
	}
	// A benchmark absent from the baseline is reported but never fails.
	extra := append(recs, benchRecord{Name: "brand-new-kernel", NsPerOp: 5})
	if err := compareKernel(extra, write(90000), true); err != nil {
		t.Fatalf("unknown kernel must not fail the guard, got %v", err)
	}
}

// TestBenchJSONRoundTrip exercises the BENCH_<name>.json writer schema.
func TestBenchJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	recs := []benchRecord{
		{Name: "solve-fused", Size: 64, Solver: "MaTCH", NsPerOp: 123456, AllocsPerOp: 42},
		{Name: "table1", Size: 10, Solver: "FastMapGA", ET: 987.5, NsPerOp: 5555},
	}
	if err := writeBenchJSON("roundtrip", recs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_roundtrip.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "roundtrip" || len(doc.Records) != 2 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if doc.Records[0] != recs[0] || doc.Records[1] != recs[1] {
		t.Fatalf("records did not round-trip: %+v", doc.Records)
	}
}
