package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 1, 0, true, false, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunQuickFig3(t *testing.T) {
	if err := run("fig3", 1, 0, true, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickAblationRho(t *testing.T) {
	if err := run("ablation-rho", 1, 0, true, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickTable3CSV(t *testing.T) {
	if err := run("table3", 1, 8, true, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickSweepTables(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep tables take several seconds")
	}
	if err := run("table1", 1, 0, true, false, true); err != nil {
		t.Fatal(err)
	}
}
