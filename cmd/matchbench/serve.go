package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"matchsim"
	"matchsim/api"
	"matchsim/client"
	"matchsim/internal/httpapi"
	"matchsim/internal/jobs"
	"matchsim/internal/telemetry"
)

// serveConfig parameterises the serving-SLO load replay.
type serveConfig struct {
	seed     uint64
	rps      float64
	duration time.Duration
	deadline time.Duration
	sizes    []int
	quiet    bool
	jsonOut  bool
}

// serveFile is the BENCH_serve.json document: the measured serving SLO
// of a live matchd under open-loop load. Latency percentiles are
// computed from the daemon's own RED histograms (linear interpolation
// within the enclosing bucket), so the report reflects exactly what a
// production scrape would show.
type serveFile struct {
	Bench     string  `json:"bench"`
	GoOS      string  `json:"goos"`
	GoArch    string  `json:"goarch"`
	Go        string  `json:"go"`
	RPS       float64 `json:"target_rps"`
	DurationS float64 `json:"duration_s"`
	DeadlineS float64 `json:"deadline_s"`
	Sizes     []int   `json:"sizes"`

	Submitted      int64 `json:"submitted"`
	Completed      int64 `json:"completed"`
	SubmitErrors   int64 `json:"submit_errors"`
	DeadlineMisses int64 `json:"deadline_misses"`

	// Job latency (submit to terminal state) from matchd_job_seconds.
	JobP50 float64 `json:"job_p50_s"`
	JobP95 float64 `json:"job_p95_s"`
	JobP99 float64 `json:"job_p99_s"`
	// API request latency from matchd_http_request_seconds (all routes).
	HTTPP50 float64 `json:"http_p50_s"`
	HTTPP95 float64 `json:"http_p95_s"`
	HTTPP99 float64 `json:"http_p99_s"`
	// ErrorRate is 4xx/5xx responses over all requests, from the RED
	// counters (client-side deadline misses are reported separately).
	ErrorRate float64 `json:"error_rate"`
}

// runServe replays an open-loop arrival process against a live in-process
// matchd — arrivals fire on the clock, never waiting for earlier requests,
// so queueing delay shows up as latency exactly as it would for real
// clients — then derives the serving SLO report from the daemon's RED
// histograms.
func runServe(cfg serveConfig) error {
	progress := func(format string, args ...any) {
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// The daemon under test: tracing on (the production posture), result
	// cache off so every submission performs a real solve.
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Node: "bench"})
	m := jobs.New(jobs.Options{
		CacheCapacity: -1,
		Tracer:        tracer,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server := &http.Server{Handler: httpapi.New(m)}
	go func() { _ = server.Serve(ln) }()
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = server.Shutdown(shutCtx)
		_ = m.Shutdown(shutCtx)
	}()
	c := client.New("http://" + ln.Addr().String())

	// Pre-render one instance per mix size; per-request seeds vary so the
	// solves are independent work, not replays of one trajectory.
	instances := make([][]byte, len(cfg.sizes))
	for i, n := range cfg.sizes {
		p, err := matchsim.GeneratePaper(cfg.seed+uint64(i), n)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := p.WriteInstance(&buf); err != nil {
			return err
		}
		instances[i] = buf.Bytes()
	}

	progress("serve: %0.f rps for %v, deadline %v, sizes %v",
		cfg.rps, cfg.duration, cfg.deadline, cfg.sizes)

	var submitted, completed, submitErrs, misses atomic.Int64
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / cfg.rps)
	ticker := time.NewTicker(interval)
	stop := time.After(cfg.duration)
	ctx := context.Background()

arrivals:
	for i := 0; ; i++ {
		select {
		case <-stop:
			break arrivals
		case <-ticker.C:
			k := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				submitted.Add(1)
				info, err := c.Submit(ctx, api.SubmitRequest{
					Instance: instances[k%len(instances)],
					Solver:   api.SolverMaTCH,
					Options:  api.SolverOptions{Seed: cfg.seed + uint64(k), Workers: 1},
				})
				if err != nil {
					submitErrs.Add(1)
					return
				}
				waitCtx, cancel := context.WithTimeout(ctx, cfg.deadline)
				defer cancel()
				final, err := c.Wait(waitCtx, info.ID, 5*time.Millisecond)
				if err != nil || final.State != api.StateDone {
					misses.Add(1)
					return
				}
				completed.Add(1)
			}()
		}
	}
	ticker.Stop()
	wg.Wait()

	text, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	jobBuckets := parseBuckets(text, "matchd_job_seconds_bucket", `state="done"`)
	httpBuckets := parseBuckets(text, "matchd_http_request_seconds_bucket", "")
	reqs := sumSeries(text, "matchd_http_requests_total")
	errs := sumSeries(text, "matchd_http_request_errors_total")

	doc := serveFile{
		Bench: "serve", GoOS: runtime.GOOS, GoArch: runtime.GOARCH, Go: runtime.Version(),
		RPS: cfg.rps, DurationS: cfg.duration.Seconds(), DeadlineS: cfg.deadline.Seconds(),
		Sizes:     cfg.sizes,
		Submitted: submitted.Load(), Completed: completed.Load(),
		SubmitErrors: submitErrs.Load(), DeadlineMisses: misses.Load(),
		JobP50:  bucketQuantile(jobBuckets, 0.50),
		JobP95:  bucketQuantile(jobBuckets, 0.95),
		JobP99:  bucketQuantile(jobBuckets, 0.99),
		HTTPP50: bucketQuantile(httpBuckets, 0.50),
		HTTPP95: bucketQuantile(httpBuckets, 0.95),
		HTTPP99: bucketQuantile(httpBuckets, 0.99),
	}
	if reqs > 0 {
		doc.ErrorRate = errs / reqs
	}
	if doc.Completed == 0 {
		return fmt.Errorf("serve: no request completed within its deadline (%d submitted, %d submit errors)",
			doc.Submitted, doc.SubmitErrors)
	}

	fmt.Printf("serve SLO (open loop, %.0f rps x %v, deadline %v)\n", cfg.rps, cfg.duration, cfg.deadline)
	fmt.Printf("  requests:   %d submitted, %d completed, %d submit errors, %d deadline misses\n",
		doc.Submitted, doc.Completed, doc.SubmitErrors, doc.DeadlineMisses)
	fmt.Printf("  job latency:  p50 %.4fs  p95 %.4fs  p99 %.4fs\n", doc.JobP50, doc.JobP95, doc.JobP99)
	fmt.Printf("  http latency: p50 %.6fs  p95 %.6fs  p99 %.6fs\n", doc.HTTPP50, doc.HTTPP95, doc.HTTPP99)
	fmt.Printf("  error rate:   %.4f\n", doc.ErrorRate)

	if cfg.jsonOut {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644)
	}
	return nil
}

// bucket is one cumulative histogram bucket from a metrics scrape.
type bucket struct {
	le  float64
	cum float64
}

// parseBuckets extracts the cumulative buckets of every series of the
// named histogram whose label set contains filter, merged across series
// (the aggregate distribution a recording rule would compute).
func parseBuckets(text, name, filter string) []bucket {
	byLE := make(map[float64]float64)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		if filter != "" && !strings.Contains(line, filter) {
			continue
		}
		leStart := strings.Index(line, `le="`)
		if leStart < 0 {
			continue
		}
		rest := line[leStart+4:]
		leEnd := strings.Index(rest, `"`)
		if leEnd < 0 {
			continue
		}
		le, err := parseLE(rest[:leEnd])
		if err != nil {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		byLE[le] += v
	}
	out := make([]bucket, 0, len(byLE))
	for le, cum := range byLE {
		out = append(out, bucket{le: le, cum: cum})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// sumSeries totals the sample values of every series of a counter.
func sumSeries(text, name string) float64 {
	var total float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+"{") && !strings.HasPrefix(line, name+" ") {
			continue
		}
		fields := strings.Fields(line)
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil {
			total += v
		}
	}
	return total
}

// bucketQuantile estimates quantile q from cumulative buckets by linear
// interpolation within the enclosing bucket — the same estimate
// Prometheus's histogram_quantile computes. The +Inf bucket has no upper
// edge, so observations landing there report the last finite edge.
func bucketQuantile(buckets []bucket, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0
	}
	target := q * total
	var prevLE, prevCum float64
	for _, b := range buckets {
		if b.cum >= target {
			if math.IsInf(b.le, 1) {
				return prevLE
			}
			if b.cum == prevCum {
				return b.le
			}
			return prevLE + (b.le-prevLE)*(target-prevCum)/(b.cum-prevCum)
		}
		prevLE, prevCum = b.le, b.cum
	}
	return prevLE
}
