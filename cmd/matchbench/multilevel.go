package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"matchsim/internal/core"
	"matchsim/internal/cost"
	"matchsim/internal/gen"
)

// The documented large-n configuration every multilevel arm uses:
// sparse-row truncation at 1e-4, coarsen down to 64 vertices (the paper
// TIG stays ~75% dense under heavy-edge contraction, so the coarse CE
// solve costs O(m*n^2) and n=128 coarse solves are ~8x slower than
// n=64 ones for no measurable quality gain after refinement), and a
// 200-iteration cap on the coarse solve.
const (
	mlSparseEps  = 1e-4
	mlMinCoarse  = 64
	mlCoarseIter = 200
)

// mlOptions is the standard multilevel arm configuration.
func mlOptions(seed uint64) core.Options {
	return core.Options{
		Seed:          seed,
		MaxIterations: mlCoarseIter,
		SparseEps:     mlSparseEps,
		Multilevel:    &core.MultilevelOptions{MinCoarse: mlMinCoarse},
	}
}

// runMultilevel measures the multilevel coarsen/solve/refine pipeline
// against single-level CE:
//
//   - n=256 (paper instance): single-level at a fixed 200-iteration
//     budget — the reference quality bar — and multilevel on the same
//     instance. The acceptance criterion is multilevel ET within 10% of
//     single-level.
//   - n=1024 (sparse hierarchical instance): multilevel, plus a
//     single-level arm granted the multilevel wall clock as a context
//     budget (it stops after the first iteration past the deadline, so
//     its ns/op records how little a 2n^2-sample iteration fits in it).
//   - n=4096 and n=10240: multilevel only. A single-level arm is not run:
//     its per-iteration sample budget 2n^2 draws of n ints would need
//     hundreds of gigabytes at these sizes (the honest result is
//     "infeasible", which is logged, not timed).
//
// -quick shrinks the protocol to the two *-quick records (n=256 and
// n=1024 at reduced iteration budgets) for the CI regression guard; the
// full run also emits them so the committed BENCH_multilevel.json carries
// baselines for exactly the records CI re-measures.
func runMultilevel(seed uint64, quick, jsonOut, quiet bool, compare string) error {
	progress := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}

	quickRecs, err := multilevelQuickRecords(seed, progress)
	if err != nil {
		return err
	}
	if compare != "" {
		// Regression-guard mode mirrors the kernel guard: measure the
		// cheap records, check them against the committed artefact, stop.
		return compareKernel(quickRecs, compare, quiet)
	}
	recs := quickRecs
	if !quick {
		full, err := multilevelFullRecords(seed, progress)
		if err != nil {
			return err
		}
		recs = append(recs, full...)
	}

	fmt.Printf("%-24s %6s %16s %12s  %s\n", "benchmark", "n", "ns/op", "exec", "solver")
	for _, r := range recs {
		exec := "-"
		if r.ET > 0 {
			exec = fmt.Sprintf("%.0f", r.ET)
		}
		fmt.Printf("%-24s %6d %16d %12s  %s\n", r.Name, r.Size, r.NsPerOp, exec, r.Solver)
	}

	if jsonOut {
		return writeBenchJSON("multilevel", recs)
	}
	return nil
}

// multilevelQuickRecords are the CI-guard measurements: seconds, not
// minutes, using reduced iteration caps. Min-of-reps like the kernel
// micros so the committed baseline and the CI re-measurement share an
// estimator.
func multilevelQuickRecords(seed uint64, progress func(string, ...any)) ([]benchRecord, error) {
	const reps = 2
	var recs []benchRecord

	inst256, err := gen.PaperInstance(seed, 256, gen.DefaultPaperConfig())
	if err != nil {
		return nil, err
	}
	eval256, err := cost.NewEvaluator(inst256.TIG, inst256.Platform)
	if err != nil {
		return nil, err
	}
	quickOpts := mlOptions(7)
	quickOpts.MaxIterations = 60
	rec, _, err := timeMultilevel("multilevel-quick-256", eval256, quickOpts, reps, progress)
	if err != nil {
		return nil, err
	}
	recs = append(recs, rec)

	eval1k, err := largeEval(seed, 1024)
	if err != nil {
		return nil, err
	}
	rec, _, err = timeMultilevel("multilevel-quick-1024", eval1k, quickOpts, reps, progress)
	if err != nil {
		return nil, err
	}
	recs = append(recs, rec)
	return recs, nil
}

// multilevelFullRecords is the full sweep: the n=256 quality comparison
// and the large-n scaling arms.
func multilevelFullRecords(seed uint64, progress func(string, ...any)) ([]benchRecord, error) {
	var recs []benchRecord

	// n=256: single-level CE is the quality reference, capped at the same
	// 200-iteration budget the multilevel coarse solve gets (its natural
	// eq. 12 / stall stop is tens of CPU-minutes away at this size; 200
	// iterations at n=256 is ~20 minutes on one core and is where the
	// gamma curve has long flattened).
	inst256, err := gen.PaperInstance(seed, 256, gen.DefaultPaperConfig())
	if err != nil {
		return nil, err
	}
	eval256, err := cost.NewEvaluator(inst256.TIG, inst256.Platform)
	if err != nil {
		return nil, err
	}
	progress("multilevel: single-level n=256 reference (%d iterations)...\n", mlCoarseIter)
	start := time.Now()
	single, err := core.Solve(eval256, core.Options{Seed: 7, MaxIterations: mlCoarseIter})
	if err != nil {
		return nil, err
	}
	singleNs := time.Since(start).Nanoseconds()
	progress("multilevel: single-256 %12d ns  exec=%g (%d iters)\n", singleNs, single.Exec, single.Iterations)
	recs = append(recs, benchRecord{
		Name: "single-256", Size: 256, Solver: "MaTCH", ET: single.Exec, NsPerOp: singleNs,
	})

	mlRec, mlRes, err := timeMultilevel("multilevel-256", eval256, mlOptions(7), 1, progress)
	if err != nil {
		return nil, err
	}
	recs = append(recs, mlRec)
	if gap := mlRes.Exec/single.Exec - 1; math.Abs(gap) > 0.10 {
		progress("multilevel: WARNING n=256 quality gap %.1f%% exceeds 10%%\n", gap*100)
	}

	// Large instances: multilevel at each size; the n=1024 single-level
	// arm gets the multilevel wall clock as its budget.
	for _, n := range []int{1024, 4096, 10240} {
		eval, err := largeEval(seed, n)
		if err != nil {
			return nil, err
		}
		rec, res, err := timeMultilevel(fmt.Sprintf("multilevel-%d", n), eval, mlOptions(7), 1, progress)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)

		switch {
		case n == 1024:
			budget := time.Duration(rec.NsPerOp)
			progress("multilevel: single-level n=1024 with %v budget...\n", budget)
			ctx, cancel := context.WithTimeout(context.Background(), budget)
			start := time.Now()
			sres, serr := core.Solve(eval, core.Options{Seed: 7, Context: ctx})
			elapsed := time.Since(start).Nanoseconds()
			cancel()
			srec := benchRecord{Name: "single-budget-1024", Size: n, Solver: "MaTCH", NsPerOp: elapsed}
			if serr != nil {
				// Cancelled before completing a single iteration: no
				// solution inside the budget. ET stays 0 (rendered "-").
				progress("multilevel: single-budget-1024 produced no mapping in budget (%v)\n", serr)
			} else {
				srec.ET = sres.Exec
				progress("multilevel: single-budget-1024 %12d ns  exec=%g (%d iters, %s)\n",
					elapsed, sres.Exec, sres.Iterations, sres.StopReason)
			}
			recs = append(recs, srec)
		default:
			// 2n^2 draws of n int64s per iteration: ~0.5 TB at n=4096,
			// ~8.6 TB at n=10240. Not an arm, a fact.
			progress("multilevel: single-level n=%d skipped (2n^2 sample budget = %d draws, infeasible)\n",
				n, 2*n*n)
		}
		_ = res
	}
	return recs, nil
}

// timeMultilevel runs one multilevel solve `reps` times keeping the
// fastest (min-of-reps, the repo's standard wall-clock estimator) and
// returns its record plus the last result.
func timeMultilevel(name string, eval *cost.Evaluator, opts core.Options, reps int,
	progress func(string, ...any)) (benchRecord, *core.Result, error) {
	var minNs int64
	var res *core.Result
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		r, err := core.Solve(eval, opts)
		if err != nil {
			return benchRecord{}, nil, fmt.Errorf("%s: %w", name, err)
		}
		ns := time.Since(start).Nanoseconds()
		if rep == 0 || ns < minNs {
			minNs = ns
		}
		res = r
		progress("multilevel: %-22s rep=%d %12d ns  exec=%g (levels=%d)\n",
			name, rep, ns, r.Exec, len(r.Levels))
	}
	return benchRecord{
		Name:    name,
		Size:    eval.NumTasks(),
		Solver:  "MaTCH-multilevel",
		ET:      res.Exec,
		NsPerOp: minNs,
	}, res, nil
}

// largeEval builds the evaluator of a sparse hierarchical instance
// (gen.LargeInstance) of n tasks.
func largeEval(seed uint64, n int) (*cost.Evaluator, error) {
	inst, err := gen.LargeInstance(seed, n, gen.LargeConfig{})
	if err != nil {
		return nil, err
	}
	return cost.NewEvaluator(inst.TIG, inst.Platform)
}
