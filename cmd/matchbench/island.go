package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"matchsim/internal/ce"
	"matchsim/internal/core"
	"matchsim/internal/cost"
	"matchsim/internal/gen"
)

// The island study asks one question: on a fixed machine, how quickly
// does an I-island ensemble reach the solution quality a single CE run
// attains with the paper's full budget? The single-island arm runs 200
// iterations (the multilevel study's reference bar, where the gamma
// curve has long flattened) and its final ET becomes the target; each
// island arm then runs with a cancel-on-target watcher and records the
// wall clock at the iteration whose global best first meets the target.
//
// The ensemble's total draw budget per iteration equals the single
// run's (each island draws ceil(2n^2/I)), so any speedup is search
// dynamics, not a bigger budget: I distribution updates per 2n^2 draws
// instead of one, plus elite migration and P-row blending sharing what
// any island finds.
const (
	islandRefIter = 200 // single-island reference budget (iterations)
	islandCapIter = 240 // island arms give up past 1.2x the reference
)

// islandEnsemble is the standard arm configuration: ring exchanges every
// k iterations, 4 migrants, moderate blending.
func islandEnsemble(count, migrateEvery int) *core.IslandOptions {
	return &core.IslandOptions{
		Count:        count,
		Topology:     "ring",
		MigrateEvery: migrateEvery,
		MigrantCount: 4,
		BlendAlpha:   0.2,
	}
}

// runIsland measures time-to-target for I in {1, 2, 4, 8} on the n=64
// and n=256 paper instances, plus a migration-interval sweep at n=64.
// -quick shrinks it to the n=64 records at reduced budgets.
func runIsland(seed uint64, quick, jsonOut, quiet bool) error {
	progress := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}

	sizes := []int{64, 256}
	counts := []int{2, 4, 8}
	refIter, capIter := islandRefIter, islandCapIter
	if quick {
		sizes = []int{64}
		counts = []int{2, 4}
		refIter, capIter = 60, 120
	}

	var recs []benchRecord
	for _, n := range sizes {
		inst, err := gen.PaperInstance(seed, n, gen.DefaultPaperConfig())
		if err != nil {
			return err
		}
		eval, err := cost.NewEvaluator(inst.TIG, inst.Platform)
		if err != nil {
			return err
		}

		progress("island: single-island n=%d reference (%d iterations)...\n", n, refIter)
		start := time.Now()
		single, err := core.Solve(eval, core.Options{Seed: 7, MaxIterations: refIter})
		if err != nil {
			return err
		}
		singleNs := time.Since(start).Nanoseconds()
		target := single.Exec
		progress("island: single-%d %12d ns  exec=%g (target)\n", n, singleNs, target)
		recs = append(recs, benchRecord{
			Name: fmt.Sprintf("island-single-%d", n), Size: n, Solver: "MaTCH",
			ET: target, NsPerOp: singleNs, Iterations: single.Iterations, ReachedTarget: true,
		})

		// Headline arms exchange every iteration (k=1): the n=64 cadence
		// sweep below shows time-to-target monotonically worsening with k
		// (k=1 reaches the bar in ~0.4x the single-island wall clock at
		// I=4, k=10 only ~0.8x), because the win is update frequency —
		// I coupled P-matrix re-estimations per 2n^2 draws — and sparse
		// exchanges squander it. Exchange cost is O(I*n^2) per iteration
		// against an O(n^3) sampling step, so k=1 is nearly free.
		for _, count := range counts {
			rec, err := timeToTarget(fmt.Sprintf("island-I%d-%d", count, n),
				eval, target, islandEnsemble(count, 1), capIter, progress)
			if err != nil {
				return err
			}
			recs = append(recs, rec)
		}

		if n == 64 && !quick {
			// Migration-interval sweep: how exchange cadence trades
			// communication against convergence, at the I=4 arm.
			for _, k := range []int{1, 5, 10, 20, 40} {
				rec, err := timeToTarget(fmt.Sprintf("island-k%d-%d", k, n),
					eval, target, islandEnsemble(4, k), capIter, progress)
				if err != nil {
					return err
				}
				recs = append(recs, rec)
			}
		}
	}

	fmt.Printf("%-20s %6s %16s %12s %8s %8s\n", "benchmark", "n", "ns-to-target", "exec", "iters", "reached")
	for _, r := range recs {
		fmt.Printf("%-20s %6d %16d %12.0f %8d %8v\n", r.Name, r.Size, r.NsPerOp, r.ET, r.Iterations, r.ReachedTarget)
	}

	if jsonOut {
		return writeBenchJSON("island", recs)
	}
	return nil
}

// timeToTarget runs one island ensemble with a watcher that cancels the
// solve the moment the global best (the minimum BestSoFar over all
// islands) meets the target, and records the wall clock at that point.
// An arm that never reaches the target within capIter iterations
// records its full wall clock, final best and ReachedTarget=false.
func timeToTarget(name string, eval *cost.Evaluator, target float64,
	iopts *core.IslandOptions, capIter int, progress func(string, ...any)) (benchRecord, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	start := time.Now()
	// OnIteration is serialised by the island runner, so plain fields are
	// safe here; reachedNs doubles as the "already cancelled" latch.
	best := math.Inf(1)
	lastIter := 0
	var reachedNs int64
	opts := core.Options{
		Seed:          7,
		MaxIterations: capIter,
		Context:       ctx,
		Islands:       iopts,
		OnIteration: func(st ce.IterStats) {
			if st.BestSoFar < best {
				best = st.BestSoFar
			}
			if st.Iter+1 > lastIter {
				lastIter = st.Iter + 1
			}
			if best <= target && reachedNs == 0 {
				reachedNs = time.Since(start).Nanoseconds()
				cancel()
			}
		},
	}
	res, err := core.Solve(eval, opts)
	elapsed := time.Since(start).Nanoseconds()
	// Cancellation by the watcher is the expected way out; any other
	// error is real.
	if err != nil && (reachedNs == 0 || ctx.Err() == nil) {
		return benchRecord{}, fmt.Errorf("%s: %w", name, err)
	}
	if res != nil && res.Exec < best {
		best = res.Exec
	}
	rec := benchRecord{
		Name: name, Size: eval.NumTasks(), Solver: "MaTCH-islands",
		ET: best, Iterations: lastIter,
	}
	if reachedNs > 0 {
		rec.NsPerOp = reachedNs
		rec.ReachedTarget = true
	} else {
		rec.NsPerOp = elapsed
	}
	progress("island: %-18s %12d ns  exec=%g (%d iters, reached=%v)\n",
		name, rec.NsPerOp, rec.ET, rec.Iterations, rec.ReachedTarget)
	return rec, nil
}
