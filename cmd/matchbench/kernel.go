package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"matchsim/internal/ce"
	"matchsim/internal/core"
	"matchsim/internal/cost"
	"matchsim/internal/gen"
	"matchsim/internal/stochmat"
	"matchsim/internal/xrand"
)

// benchRecord is one row of a BENCH_<name>.json artefact: a named
// measurement with whatever subset of the fields applies. Sweep rows carry
// (size, solver, ET, ns/op); kernel rows carry (ns/op, bytes/op,
// allocs/op).
type benchRecord struct {
	Name        string  `json:"name"`
	Size        int     `json:"size,omitempty"`
	Solver      string  `json:"solver,omitempty"`
	ET          float64 `json:"et_units,omitempty"`
	NsPerOp     int64   `json:"ns_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// SpeedupVsBaseline is NsPerOp of the -baseline reference divided by
	// this record's NsPerOp; only set when -baseline is given.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
	// Iterations and ReachedTarget are set by the island time-to-target
	// study: iterations consumed, and whether the arm met the
	// single-island reference ET (NsPerOp is then the time to reach it).
	Iterations    int  `json:"iterations,omitempty"`
	ReachedTarget bool `json:"reached_target,omitempty"`
}

// benchFile is the BENCH_<name>.json document.
type benchFile struct {
	Bench   string        `json:"bench"`
	GoOS    string        `json:"goos"`
	GoArch  string        `json:"goarch"`
	Go      string        `json:"go"`
	Records []benchRecord `json:"records"`
}

// writeBenchJSON writes BENCH_<name>.json in the working directory.
func writeBenchJSON(name string, records []benchRecord) error {
	doc := benchFile{
		Bench:   name,
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		Go:      runtime.Version(),
		Records: records,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := "BENCH_" + name + ".json"
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// kernelBench is one micro-benchmark of the fused hot path.
type kernelBench struct {
	name string
	fn   func(b *testing.B)
}

// runKernel benchmarks the sample-and-score kernels (the code paths the
// fused SampleScorer optimisation touches) plus the end-to-end fused vs
// unfused Solve at n=64, printing a table and — with -json — writing
// BENCH_kernel.json (micro) and BENCH_fused.json (end-to-end).
// baselineNs, when non-zero, is a reference ns/op (e.g. the pre-fusion
// end-to-end measurement) used to annotate the end-to-end records with
// speedups.
func runKernel(seed uint64, quick, jsonOut bool, baselineNs int64, quiet bool, compare string) error {
	const n = 64
	inst, err := gen.PaperInstance(seed, n, gen.DefaultPaperConfig())
	if err != nil {
		return err
	}
	eval, err := cost.NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		return err
	}
	uniform := stochmat.NewUniform(n, n)
	cdf := stochmat.NewRowCDF(uniform)
	alias := stochmat.NewAliasTable(uniform)

	micro := []kernelBench{
		{"genperm-linear", func(b *testing.B) {
			b.ReportAllocs()
			s := stochmat.NewSampler(n)
			rng := xrand.New(1)
			dst := make([]int, n)
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutation(uniform, rng, dst); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"genperm-fast-cdf", func(b *testing.B) {
			b.ReportAllocs()
			s := stochmat.NewSampler(n)
			rng := xrand.New(1)
			dst := make([]int, n)
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutationFast(uniform, cdf, nil, rng, dst, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"genperm-fast-alias", func(b *testing.B) {
			b.ReportAllocs()
			s := stochmat.NewSampler(n)
			rng := xrand.New(1)
			dst := make([]int, n)
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutationFast(uniform, nil, alias, rng, dst, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"alias-rebuild", func(b *testing.B) {
			// Alternate two distinct source matrices so every Rebuild sees a
			// new source identity and reconstructs all n rows — without the
			// alternation, the dirty-row tracking would skip every row and
			// this would measure the skip path (recorded separately below).
			b.ReportAllocs()
			other := stochmat.NewUniform(n, n)
			at := stochmat.NewAliasTable(uniform)
			srcs := [2]*stochmat.Matrix{other, uniform}
			for i := 0; i < b.N; i++ {
				at.Rebuild(srcs[i&1])
			}
		}},
		{"alias-rebuild-skip", func(b *testing.B) {
			// Rebuild from an unchanged matrix: every row version matches,
			// so the whole call is n version compares — the fast path a
			// converged sparse-row run hits almost every iteration.
			b.ReportAllocs()
			at := stochmat.NewAliasTable(uniform)
			for i := 0; i < b.N; i++ {
				at.Rebuild(uniform)
			}
		}},
		{"fused-sample-score", func(b *testing.B) {
			// The production fused path: sample a full permutation, then
			// score it with one edge-list sweep (no pruning threshold).
			b.ReportAllocs()
			s := stochmat.NewSampler(n)
			rng := xrand.New(1)
			dst := make([]int, n)
			ss := cost.NewStreamScorer(eval)
			var sink float64
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutationFast(uniform, nil, alias, rng, dst, nil); err != nil {
					b.Fatal(err)
				}
				sink = ss.ScoreMapping(dst)
			}
			_ = sink
		}},
		{"fused-sample-score-pruned", func(b *testing.B) {
			// Same kernel with a tight gamma installed: most draws prove
			// themselves over-threshold during the sweep's tail and skip
			// the remaining blocks, bounding the per-draw saving the
			// pruning threshold yields in a converged CE run.
			b.ReportAllocs()
			s := stochmat.NewSampler(n)
			rng := xrand.New(1)
			dst := make([]int, n)
			ss := cost.NewStreamScorer(eval)
			gamma := calibrateGamma(eval, uniform, alias)
			var sink float64
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutationFast(uniform, nil, alias, rng, dst, nil); err != nil {
					b.Fatal(err)
				}
				ss.SetGamma(gamma)
				sink = ss.ScoreMapping(dst)
			}
			_ = sink
		}},
		{"sample-then-exec", func(b *testing.B) {
			b.ReportAllocs()
			s := stochmat.NewSampler(n)
			rng := xrand.New(1)
			dst := make([]int, n)
			scratch := make([]float64, n)
			var sink float64
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutationFast(uniform, nil, alias, rng, dst, nil); err != nil {
					b.Fatal(err)
				}
				sink = eval.ExecInto(cost.Mapping(dst), scratch)
			}
			_ = sink
		}},
		{"elite-quickselect", func(b *testing.B) {
			b.ReportAllocs()
			benchEliteSelect(b, true)
		}},
		{"elite-full-sort", func(b *testing.B) {
			b.ReportAllocs()
			benchEliteSelect(b, false)
		}},
		{"exec-after-swap", func(b *testing.B) {
			b.ReportAllocs()
			rng := xrand.New(3)
			m := make(cost.Mapping, n)
			for i := range m {
				m[i] = i
			}
			rng.ShuffleInts(m)
			st, err := cost.NewState(eval, m)
			if err != nil {
				b.Fatal(err)
			}
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = st.ExecAfterSwap(rng.Intn(n), rng.Intn(n))
			}
			_ = sink
		}},
	}

	// Min-of-reps per kernel: a single testing.Benchmark pass on a noisy
	// shared core can land 30%+ high (frequency ramps, page faults),
	// which would trip the -compare regression gate spuriously. The
	// committed artefact and the CI measurement must use the same
	// estimator for the 25% tolerance to mean anything.
	const microReps = 3
	var kernelRecs []benchRecord
	for _, kb := range micro {
		res := testing.Benchmark(kb.fn)
		for r := 1; r < microReps; r++ {
			if rr := testing.Benchmark(kb.fn); rr.NsPerOp() < res.NsPerOp() {
				res = rr
			}
		}
		kernelRecs = append(kernelRecs, benchRecord{
			Name:        kb.name,
			Size:        n,
			NsPerOp:     res.NsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
		if !quiet {
			fmt.Fprintf(os.Stderr, "kernel %-20s %12d ns/op %8d B/op %6d allocs/op\n",
				kb.name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
		}
	}

	if compare != "" {
		// Regression-guard mode: check the micro measurements against the
		// committed baseline and stop — the end-to-end solves are too
		// noisy for a hard CI gate and the guard must not rewrite the
		// artefacts it compares against.
		return compareKernel(kernelRecs, compare, quiet)
	}

	iters := 120
	if quick {
		iters = 20
	}
	var fusedRecs []benchRecord
	for _, arm := range []struct {
		name    string
		unfused bool
	}{{"solve-fused", false}, {"solve-unfused", true}} {
		bench := func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(eval, core.Options{
					Seed: uint64(i), MaxIterations: iters, UnfusedScoring: arm.unfused,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		// Same min-of-reps estimator as the micros: the first full solve
		// in a fresh process otherwise absorbs warmup costs.
		res := testing.Benchmark(bench)
		for r := 1; r < microReps; r++ {
			if rr := testing.Benchmark(bench); rr.NsPerOp() < res.NsPerOp() {
				res = rr
			}
		}
		rec := benchRecord{
			Name:        arm.name,
			Size:        n,
			Solver:      "MaTCH",
			NsPerOp:     res.NsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if baselineNs > 0 {
			rec.SpeedupVsBaseline = float64(baselineNs) / float64(res.NsPerOp())
		}
		fusedRecs = append(fusedRecs, rec)
		if !quiet {
			fmt.Fprintf(os.Stderr, "solve  %-20s %12d ns/op (n=%d, %d iters)\n",
				arm.name, res.NsPerOp(), n, iters)
		}
	}
	if baselineNs > 0 {
		fusedRecs = append(fusedRecs, benchRecord{
			Name: "solve-baseline", Size: n, Solver: "MaTCH", NsPerOp: baselineNs,
		})
	}

	fmt.Printf("%-22s %14s %10s %8s\n", "benchmark", "ns/op", "B/op", "allocs")
	for _, r := range append(append([]benchRecord{}, kernelRecs...), fusedRecs...) {
		fmt.Printf("%-22s %14d %10d %8d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	if jsonOut {
		if err := writeBenchJSON("kernel", kernelRecs); err != nil {
			return err
		}
		if err := writeBenchJSON("fused", fusedRecs); err != nil {
			return err
		}
	}
	return nil
}

// calibrateGamma derives a realistic pruning threshold for the pruned
// kernel benchmark: the 5th-percentile makespan of 200 draws from m — the
// rho = 0.05 elite quantile a CE iteration would install.
func calibrateGamma(eval *cost.Evaluator, m *stochmat.Matrix, at *stochmat.AliasTable) float64 {
	const draws = 200
	s := stochmat.NewSampler(m.Rows())
	rng := xrand.New(17)
	dst := make([]int, m.Rows())
	scratch := make([]float64, eval.NumResources())
	scores := make([]float64, 0, draws)
	for i := 0; i < draws; i++ {
		if err := s.SamplePermutationFast(m, nil, at, rng, dst, nil); err != nil {
			return 0
		}
		scores = append(scores, eval.ExecInto(cost.Mapping(dst), scratch))
	}
	sort.Float64s(scores)
	return scores[draws/20]
}

// benchEliteSelect measures elite extraction from a CE-iteration-sized
// score vector (N = 2n^2 at n=64), either by quickselect (the production
// path) or a full sort of the candidate order.
func benchEliteSelect(b *testing.B, quickselect bool) {
	const sampleN = 2 * 64 * 64
	k := sampleN / 20
	rng := xrand.New(5)
	base := make([]float64, sampleN)
	for i := range base {
		base[i] = rng.Float64() * 1000
	}
	scores := make([]float64, sampleN)
	order := make([]int, sampleN)
	for i := 0; i < b.N; i++ {
		copy(scores, base)
		for j := range order {
			order[j] = j
		}
		if quickselect {
			ce.SelectElite(order, scores, k, true)
		} else {
			sort.Slice(order, func(a, c int) bool {
				sa, sc := scores[order[a]], scores[order[c]]
				if sa != sc {
					return sa < sc
				}
				return order[a] < order[c]
			})
		}
	}
}
