// Command matchbench regenerates every table and figure of the paper's
// experimental study (Section 5) plus the ablation studies documented in
// DESIGN.md.
//
// Usage:
//
//	matchbench -exp table1        # Table 1 (and the shared sweep for Table 2)
//	matchbench -exp table3        # ANOVA study
//	matchbench -exp fig3          # stochastic matrix evolution
//	matchbench -exp fig7          # ET bar chart (same sweep as Table 1)
//	matchbench -exp all           # everything
//	matchbench -exp table1 -quick # reduced budgets for smoke runs
//	matchbench -exp table1 -csv   # machine-readable output
//	matchbench -exp table1 -json  # also write BENCH_table1.json
//	matchbench -exp kernel -json  # hot-path micro-benchmarks -> BENCH_kernel.json + BENCH_fused.json
//	matchbench -exp scale -json   # large-n wall-clock scaling  -> BENCH_scale.json
//	matchbench -exp multilevel -json  # multilevel vs single-level CE -> BENCH_multilevel.json
//	matchbench -exp island -json  # island-model time-to-target -> BENCH_island.json
//	matchbench -exp kernel -compare BENCH_kernel.json  # CI regression guard
//	matchbench -exp serve -json   # open-loop load replay against a live matchd -> BENCH_serve.json
//	matchbench -exp trace-overhead  # traced vs untraced solve; exit 1 above -max-overhead
//
// Experiments: table1, table2, table3 (with post-hoc Welch tests; -size
// overrides the instance size), fig3, fig7, fig8, fig9, convergence,
// scaling, simcheck, overset, kernel (sample-and-score micro-benchmarks
// plus the end-to-end fused vs unfused Solve; -baseline annotates
// speedups against a reference ns/op; -compare regression-checks the
// micros against a committed baseline), scale (end-to-end Solve wall
// clock at n = 64/128/256, pruned vs unpruned, against the recorded
// pre-optimisation baseline), multilevel (coarsen/solve/refine pipeline
// vs single-level CE at n = 256..10240; -compare regression-checks the
// quick records against a committed BENCH_multilevel.json), island
// (island-model ensembles at I = 1/2/4/8: wall time to reach the
// single-island 200-iteration ET, plus a migration-interval sweep),
// ablation-rho, ablation-zeta,
// ablation-samples, ablation-workers, ablation-selection,
// ablation-warmstart, baselines, all.
//
// -cpuprofile/-memprofile write pprof profiles covering the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"matchsim/internal/core"
	"matchsim/internal/exp"
	"matchsim/internal/ga"
)

func main() {
	var (
		expName    = flag.String("exp", "all", "experiment to run")
		seed       = flag.Uint64("seed", 2005, "master seed")
		size       = flag.Int("size", 0, "instance size override for table3 (paper: 10)")
		quick      = flag.Bool("quick", false, "reduced budgets (seconds instead of minutes)")
		csv        = flag.Bool("csv", false, "emit CSV instead of formatted tables")
		jsonOut    = flag.Bool("json", false, "also write BENCH_<name>.json artefacts (table1, kernel, scale)")
		baseline   = flag.Int64("baseline", 0, "reference ns/op for kernel speedup annotations (e.g. a pre-optimisation end-to-end run)")
		quiet      = flag.Bool("q", false, "suppress progress output")
		compare    = flag.String("compare", "", "BENCH_kernel.json baseline to regression-check the kernel micro-benchmarks against (exit 1 on >25% ns/op regression; silently skipped when the file is missing)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		// serve knobs (the open-loop load replay against a live matchd).
		serveRPS      = flag.Float64("serve-rps", 20, "serve: open-loop arrival rate (requests/second)")
		serveDuration = flag.Duration("serve-duration", 20*time.Second, "serve: load replay length")
		serveDeadline = flag.Duration("serve-deadline", time.Second, "serve: per-request completion deadline (misses are reported)")
		serveSizes    = flag.String("serve-sizes", "8,12,16", "serve: comma-separated instance sizes cycled across requests")
		maxOverhead   = flag.Float64("max-overhead", 0.02, "trace-overhead: fail above this fractional wall-clock overhead (0 disables the check)")
	)
	flag.Parse()

	if *expName == "serve" {
		sizes, err := parseSizes(*serveSizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matchbench: %v\n", err)
			os.Exit(1)
		}
		cfg := serveConfig{
			seed: *seed, rps: *serveRPS, duration: *serveDuration,
			deadline: *serveDeadline, sizes: sizes, quiet: *quiet, jsonOut: *jsonOut,
		}
		if *quick {
			cfg.rps, cfg.duration = 10, 3*time.Second
		}
		if err := runServe(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "matchbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *expName == "trace-overhead" {
		if err := runTraceOverhead(*seed, *quick, *jsonOut, *quiet, *maxOverhead); err != nil {
			fmt.Fprintf(os.Stderr, "matchbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matchbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "matchbench: %v\n", err)
			os.Exit(1)
		}
	}

	err := run(*expName, *seed, *size, *quick, *csv, *jsonOut, *baseline, *quiet, *compare)

	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr == nil {
			runtime.GC() // materialise only live heap in the profile
			ferr = pprof.WriteHeapProfile(f)
			f.Close()
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "matchbench: memprofile: %v\n", ferr)
		}
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchbench: %v\n", err)
		os.Exit(1)
	}
}

// sweepConfig builds the Table 1/2 configuration. The paper's full
// protocol (sizes 10..50, 5 repeats, GA 500x1000) takes minutes; -quick
// shrinks it to a smoke test.
func sweepConfig(seed uint64, quick, quiet bool) exp.SweepConfig {
	cfg := exp.SweepConfig{Seed: seed}
	if quick {
		cfg.Sizes = []int{10, 20, 30}
		cfg.Repeats = 2
		cfg.GA = ga.Options{PopulationSize: 100, Generations: 150}
		cfg.MaTCH = core.Options{MaxIterations: 60}
	}
	if !quiet {
		cfg.Progress = os.Stderr
	}
	return cfg
}

func run(expName string, seed uint64, size int, quick, csv, jsonOut bool, baseline int64, quiet bool, compare string) error {
	show := func(t *exp.Table) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}

	if expName == "kernel" {
		return runKernel(seed, quick, jsonOut, baseline, quiet, compare)
	}
	if expName == "scale" {
		return runScale(seed, quick, jsonOut, quiet)
	}
	if expName == "multilevel" {
		return runMultilevel(seed, quick, jsonOut, quiet, compare)
	}
	if expName == "island" {
		return runIsland(seed, quick, jsonOut, quiet)
	}

	needsSweep := map[string]bool{"table1": true, "table2": true, "fig7": true, "fig8": true, "fig9": true, "all": true}
	var sweep *exp.SweepResult
	if needsSweep[expName] {
		var err error
		sweep, err = exp.RunSweep(sweepConfig(seed, quick, quiet))
		if err != nil {
			return err
		}
	}

	match := func(names ...string) bool {
		if expName == "all" {
			return true
		}
		for _, n := range names {
			if expName == n {
				return true
			}
		}
		return false
	}

	ran := false
	if match("table1") {
		show(exp.RenderTable1(sweep))
		if jsonOut {
			var recs []benchRecord
			for i, n := range sweep.Sizes {
				recs = append(recs,
					benchRecord{Name: "table1", Size: n, Solver: "MaTCH",
						ET: sweep.MaTCH[i].ET, NsPerOp: sweep.MaTCH[i].MT.Nanoseconds()},
					benchRecord{Name: "table1", Size: n, Solver: "FastMapGA",
						ET: sweep.GA[i].ET, NsPerOp: sweep.GA[i].MT.Nanoseconds()})
			}
			if err := writeBenchJSON("table1", recs); err != nil {
				return err
			}
		}
		ran = true
	}
	if match("table2") {
		show(exp.RenderTable2(sweep))
		ran = true
	}
	if match("fig7") {
		fmt.Println(exp.RenderFig7(sweep))
		ran = true
	}
	if match("fig8") {
		fmt.Println(exp.RenderFig8(sweep))
		ran = true
	}
	if match("fig9") {
		fmt.Println(exp.RenderFig9(sweep))
		ran = true
	}
	if match("table3") {
		cfg := exp.ANOVAConfig{Seed: seed, Size: size}
		if quick {
			cfg.Runs = 8
			cfg.GASmallPop = ga.Options{PopulationSize: 50, Generations: 400}
			cfg.GALargePop = ga.Options{PopulationSize: 200, Generations: 100}
			cfg.MaTCH = core.Options{MaxIterations: 80}
		}
		if !quiet {
			cfg.Progress = os.Stderr
		}
		res, err := exp.RunANOVA(cfg)
		if err != nil {
			return err
		}
		desc, an := exp.RenderTable3(res)
		show(desc)
		show(an)
		show(exp.RenderPostHoc(res))
		ran = true
	}
	if match("convergence") {
		cfg := exp.Fig3Config{Seed: seed}
		if quick {
			cfg.MaTCH = core.Options{MaxIterations: 60}
		}
		res, err := exp.RunFig3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderConvergence("MaTCH convergence trace (n=10)", res.Run.History))
		if csv {
			fmt.Print(exp.HistoryCSV(res.Run.History))
		}
		ran = true
	}
	if match("fig3") {
		cfg := exp.Fig3Config{Seed: seed}
		if quick {
			cfg.MaTCH = core.Options{MaxIterations: 80}
		}
		res, err := exp.RunFig3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderFig3(res))
		ran = true
	}

	abl := exp.AblationConfig{Seed: seed}
	if quick {
		abl.Size = 12
		abl.Repeats = 2
		abl.MaxIterations = 50
	}
	if match("ablation-rho") {
		t, err := exp.AblateRho(abl, nil)
		if err != nil {
			return err
		}
		show(t)
		ran = true
	}
	if match("ablation-zeta") {
		t, err := exp.AblateZeta(abl, nil)
		if err != nil {
			return err
		}
		show(t)
		ran = true
	}
	if match("ablation-samples") {
		t, err := exp.AblateSampleSize(abl, nil)
		if err != nil {
			return err
		}
		show(t)
		ran = true
	}
	if match("ablation-workers") {
		t, err := exp.AblateWorkers(abl, nil)
		if err != nil {
			return err
		}
		show(t)
		ran = true
	}
	if match("ablation-selection") {
		t, err := exp.AblateSelection(abl)
		if err != nil {
			return err
		}
		show(t)
		ran = true
	}
	if match("ablation-warmstart") {
		t, err := exp.AblateWarmStart(abl)
		if err != nil {
			return err
		}
		show(t)
		ran = true
	}
	if match("overset") {
		sizes := []int{10, 20, 30}
		repeats := 3
		if quick {
			sizes = []int{8, 12}
			repeats = 1
		}
		res, err := exp.OversetSweep(seed, sizes, repeats)
		if err != nil {
			return err
		}
		show(exp.RenderOversetSweep(res))
		ran = true
	}
	if match("simcheck") {
		sizes := []int{10, 20, 30}
		if quick {
			sizes = []int{8, 12}
		}
		res, err := exp.RunSimCheck(seed, sizes)
		if err != nil {
			return err
		}
		show(exp.RenderSimCheck(res))
		ran = true
	}
	if match("scaling") {
		sizes := []int{10, 20, 30, 40}
		repeats := 3
		if quick {
			sizes = []int{8, 12, 16}
			repeats = 1
		}
		res, err := exp.RunScaling(seed, sizes, repeats)
		if err != nil {
			return err
		}
		show(exp.RenderScaling(res))
		ran = true
	}
	if match("baselines") {
		t, err := exp.CompareBaselines(abl)
		if err != nil {
			return err
		}
		show(t)
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want one of table1 table2 table3 fig3 fig7 fig8 fig9 kernel scale multilevel island serve trace-overhead %s baselines overset simcheck scaling convergence all)",
			expName, strings.Join([]string{"ablation-rho", "ablation-zeta", "ablation-samples", "ablation-workers", "ablation-selection", "ablation-warmstart"}, " "))
	}
	return nil
}

// parseSizes parses the -serve-sizes list ("8,12,16").
func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid -serve-sizes entry %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("-serve-sizes is empty")
	}
	return sizes, nil
}
