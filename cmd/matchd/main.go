// Command matchd serves the MaTCH solvers as a long-running mapping
// service: jobs are submitted over HTTP/JSON, run on a bounded worker
// pool, stream per-iteration progress over SSE, and identical submissions
// are answered from a content-addressed result cache. SIGINT/SIGTERM
// drains gracefully — running CE jobs are checkpointed to -checkpoint-dir
// and resume on the next start.
//
// Usage:
//
//	matchd [-listen 127.0.0.1:8080] [-queue 64] [-workers N]
//	       [-cache 128] [-checkpoint-dir DIR] [-trace FILE]
//	       [-trace-spans FILE] [-trace-buffer 4096] [-node NAME]
//	       [-pprof 127.0.0.1:6060]
//
// Cluster mode: -coordinator turns the daemon into a routing
// coordinator over a fixed set of worker matchd nodes, with -workers
// reinterpreted as their comma-separated base URLs:
//
//	matchd -coordinator -workers=http://h1:8080,http://h2:8080
//	       [-cluster-state DIR] [-cache 256] [-poll-interval 200ms]
//	       [-checkpoint-every 5]
//
// The coordinator serves the same job API (plus GET /v1/cluster and
// POST /v1/cluster/drain), consistent-hash routes each submission's
// content address to a worker, collapses identical concurrent
// submissions, and hands a dead or draining worker's solves off to the
// survivors from their freshest checkpoints. -cluster-state journals
// in-flight solves so a restarted coordinator re-attaches to them.
//
// Distributed tracing is always on: every daemon keeps a bounded
// in-memory ring of finished spans served at /v1/traces, -trace-spans
// additionally appends each finished span as a JSONL record, and -node
// names this daemon in multi-node traces (default: the hostname).
//
// See the README's "Running matchd" section for the API walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strconv"
	"strings"

	"matchsim/internal/cluster"
	"matchsim/internal/httpapi"
	"matchsim/internal/jobs"
	"matchsim/internal/telemetry"
	"matchsim/internal/trace"
)

// splitWorkerURLs parses the coordinator-mode -workers value: a
// comma-separated list of worker base URLs, blanks dropped.
func splitWorkerURLs(s string) []string {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			urls = append(urls, p)
		}
	}
	return urls
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "matchd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("matchd", flag.ContinueOnError)
	var (
		listen        = fs.String("listen", "127.0.0.1:8080", "address to listen on (host:port; port 0 picks a free one)")
		queue         = fs.Int("queue", 64, "submission queue capacity")
		workers       = fs.String("workers", "", "concurrent solver jobs (integer; 0 or empty = GOMAXPROCS) — with -coordinator, the comma-separated worker base URLs instead")
		cache         = fs.Int("cache", 128, "result cache capacity in entries (negative disables)")
		checkpointDir = fs.String("checkpoint-dir", "", "directory for shutdown checkpoints (empty disables persistence)")
		coordinator   = fs.Bool("coordinator", false, "run as a cluster coordinator routing jobs to the -workers nodes instead of solving locally")
		clusterState  = fs.String("cluster-state", "", "coordinator journal directory for in-flight solves (empty disables restart re-attachment)")
		pollInterval  = fs.Duration("poll-interval", 200*time.Millisecond, "coordinator worker job-status poll cadence")
		ckptEvery     = fs.Int("checkpoint-every", 5, "coordinator-injected checkpoint export cadence (CE iterations) for handoff")
		traceFile     = fs.String("trace", "", "append every job's trace events to this JSONL file")
		spanFile      = fs.String("trace-spans", "", "append every finished span to this JSONL file")
		traceBuffer   = fs.Int("trace-buffer", 4096, "finished spans retained in memory for /v1/traces")
		nodeName      = fs.String("node", "", "node name stamped on spans (default: hostname)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "max time to wait for running jobs on shutdown")
		pprofAddr     = fs.String("pprof", "", "serve net/http/pprof on this side address (empty disables; keep it loopback-only)")
		logJSON       = fs.Bool("log-json", false, "emit structured logs as JSON lines instead of logfmt text")
		logLevel      = fs.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("invalid -log-level %q: %w", *logLevel, err)
	}
	handlerOpts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(stdout, handlerOpts)
	if *logJSON {
		handler = slog.NewJSONHandler(stdout, handlerOpts)
	}
	logger := slog.New(handler)

	var tw *trace.Writer
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		tw = trace.NewWriter(f)
		// Close flushes the final events once the drain completes and
		// surfaces any write error the per-event emits swallowed.
		defer func() {
			if err := tw.Close(); err != nil {
				logger.Error("trace writer", "file", *traceFile, "error", err)
			}
		}()
	}

	node := *nodeName
	if node == "" {
		node, _ = os.Hostname()
	}
	var spanLog *telemetry.SpanLog
	if *spanFile != "" {
		f, err := os.OpenFile(*spanFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		spanLog = telemetry.NewSpanLog(f)
		defer func() {
			if err := spanLog.Close(); err != nil {
				logger.Error("span log", "file", *spanFile, "error", err)
			}
		}()
	}
	tracer := telemetry.NewTracer(telemetry.TracerOptions{
		Node:     node,
		Capacity: *traceBuffer,
		Log:      spanLog,
	})

	if *coordinator {
		urls := splitWorkerURLs(*workers)
		if len(urls) == 0 {
			return fmt.Errorf("-coordinator requires -workers=<url>[,<url>...]")
		}
		co, err := cluster.New(cluster.Options{
			Workers:         urls,
			CacheCapacity:   *cache,
			StateDir:        *clusterState,
			CheckpointEvery: *ckptEvery,
			PollInterval:    *pollInterval,
			Tracer:          tracer,
			Logger:          logger,
		})
		if err != nil {
			return err
		}
		if restored, err := co.Restore(); err != nil {
			logger.Warn("cluster restore failed", "error", err)
		} else if restored > 0 {
			logger.Info("re-attached journalled flights", "count", restored, "dir", *clusterState)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "matchd listening on http://%s\n", ln.Addr())
		server := &http.Server{Handler: cluster.NewServer(co)}
		errCh := make(chan error, 1)
		go func() { errCh <- server.Serve(ln) }()
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		select {
		case <-ctx.Done():
			logger.Info("signal received; draining", "timeout", *drainTimeout)
		case err := <-errCh:
			return err
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := server.Shutdown(drainCtx); err != nil {
			logger.Warn("http shutdown", "error", err)
		}
		if err := co.Shutdown(drainCtx); err != nil {
			return err
		}
		if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			return serveErr
		}
		logger.Info("drained cleanly")
		return nil
	}

	solverWorkers := 0
	if *workers != "" {
		n, err := strconv.Atoi(*workers)
		if err != nil || n < 0 {
			return fmt.Errorf("invalid -workers %q (worker mode takes a job count)", *workers)
		}
		solverWorkers = n
	}
	manager := jobs.New(jobs.Options{
		QueueCapacity: *queue,
		Workers:       solverWorkers,
		CacheCapacity: *cache,
		CheckpointDir: *checkpointDir,
		TraceWriter:   tw,
		Tracer:        tracer,
		Logger:        logger,
	})
	if restored, err := manager.Restore(); err != nil {
		logger.Warn("restore failed", "error", err, "restored", restored)
	} else if restored > 0 {
		logger.Info("restored checkpointed jobs", "count", restored, "dir", *checkpointDir)
	}

	if *pprofAddr != "" {
		// The profiler gets its own listener and mux so the job API's
		// handler (and its auth posture) never exposes the debug
		// endpoints. Best-effort: profiling must not take the service
		// down, so serve errors only log.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "url", fmt.Sprintf("http://%s/debug/pprof/", pln.Addr()))
		go func() {
			if err := http.Serve(pln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Error("pprof server", "error", err)
			}
		}()
		defer pln.Close()
	}

	// Listen before announcing readiness so -listen :0 reports the real
	// port. The announcement is a plain line, not a structured record: it
	// is the daemon's readiness contract (the e2e tests parse it).
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "matchd listening on http://%s\n", ln.Addr())

	server := &http.Server{Handler: httpapi.New(manager)}
	errCh := make(chan error, 1)
	go func() { errCh <- server.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("signal received; draining", "timeout", *drainTimeout)
	case err := <-errCh:
		return err
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := server.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if err := manager.Shutdown(drainCtx); err != nil {
		return err
	}
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	logger.Info("drained cleanly")
	return nil
}
