package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"matchsim"
	"matchsim/api"
	"matchsim/client"
)

// buildDaemon compiles the matchd binary into a temp dir once per test
// run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "matchd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building matchd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and returns its base URL, parsed from
// the "listening on" line, plus the running process.
func startDaemon(t *testing.T, bin string, extraArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting matchd: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	urlCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			line := scanner.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				urlCh <- strings.TrimSpace(line[i+len("listening on "):])
			}
		}
	}()
	select {
	case base := <-urlCh:
		return cmd, base
	case <-time.After(30 * time.Second):
		t.Fatal("matchd never announced its listen address")
		return nil, ""
	}
}

// TestEndToEndSmoke is the CI smoke: build matchd, start it, submit an
// n=16 MaTCH job through the client, poll it to completion, and assert
// the result is bit-identical to a direct library solve with the same
// seed and worker count.
func TestEndToEndSmoke(t *testing.T) {
	bin := buildDaemon(t)
	cmd, base := startDaemon(t, bin)
	ctx := context.Background()
	c := client.New(base)

	p, err := matchsim.GeneratePaper(2026, 16)
	if err != nil {
		t.Fatalf("GeneratePaper: %v", err)
	}
	var inst bytes.Buffer
	if err := p.WriteInstance(&inst); err != nil {
		t.Fatalf("WriteInstance: %v", err)
	}

	opts := api.SolverOptions{Seed: 7, Workers: 2}
	info, err := c.Submit(ctx, api.SubmitRequest{Instance: inst.Bytes(), Solver: api.SolverMaTCH, Options: opts})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	final, err := c.Wait(waitCtx, info.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != api.StateDone {
		t.Fatalf("job ended %q (error %q), want done", final.State, final.Error)
	}
	res, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}

	direct, err := matchsim.SolveMaTCH(p, matchsim.MaTCHOptions{Seed: 7, Workers: 2})
	if err != nil {
		t.Fatalf("SolveMaTCH: %v", err)
	}
	if res.Exec != direct.Exec {
		t.Errorf("service exec %v != direct exec %v", res.Exec, direct.Exec)
	}
	if !reflect.DeepEqual(res.Mapping, direct.Mapping) {
		t.Errorf("service mapping %v != direct mapping %v", res.Mapping, direct.Mapping)
	}

	// Identical resubmission must be a cache hit answered as done.
	again, err := c.Submit(ctx, api.SubmitRequest{Instance: inst.Bytes(), Solver: api.SolverMaTCH, Options: opts})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if again.State != api.StateDone || !again.CacheHit {
		t.Errorf("resubmission state=%q cacheHit=%v, want done cache hit", again.State, again.CacheHit)
	}

	// The solve must have fed the telemetry registry: scrape /metrics and
	// assert the solver-internals counters moved.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, name := range []string{
		"matchd_solver_iterations_total",
		"matchd_solver_draws_total",
		"matchd_solves_total",
	} {
		v, found := scrapeValue(metrics, name)
		if !found {
			t.Errorf("metrics missing %s:\n%s", name, metrics)
		} else if v <= 0 {
			t.Errorf("%s = %v, want > 0 after a solve", name, v)
		}
	}

	// Distributed tracing: the submission rooted a trace, and the
	// retained span tree must cover the job's whole lifecycle —
	// submit (request span) -> job -> queue + solve, with the terminal
	// result recorded as an event on the job span.
	if info.TraceID == "" {
		t.Fatal("submission carried no trace ID")
	}
	doc, err := c.Trace(ctx, info.TraceID)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	reqSpan := findSpanNamed(doc.Spans, "POST /v1/jobs")
	if reqSpan == nil {
		t.Fatalf("trace %s has no request span: %+v", info.TraceID, doc)
	}
	jobSpan := findSpanNamed(reqSpan.Children, "job")
	if jobSpan == nil {
		t.Fatalf("job span not parented under the request span: %+v", doc)
	}
	for _, name := range []string{"queue", "solve"} {
		if findSpanNamed(jobSpan.Children, name) == nil {
			t.Errorf("job span missing %q child", name)
		}
	}
	var sawResult bool
	for _, ev := range jobSpan.Events {
		sawResult = sawResult || ev.Name == "result"
	}
	if !sawResult {
		t.Error("job span carries no result event")
	}
	// Span accounting: with every job terminal, nothing may leak.
	metrics, err = c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if open, found := scrapeValue(metrics, "matchd_trace_spans_open"); !found {
		t.Error("metrics missing matchd_trace_spans_open")
	} else if open != 0 {
		t.Errorf("matchd_trace_spans_open = %v, want 0 once jobs are terminal", open)
	}

	// Graceful termination.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("matchd exited uncleanly after SIGTERM: %v", err)
	}
}

// findSpanNamed walks a span tree depth-first for the first span with
// the given name.
func findSpanNamed(spans []api.Span, name string) *api.Span {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if hit := findSpanNamed(spans[i].Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// flattenSpans collects a span tree into a flat list.
func flattenSpans(spans []api.Span) []api.Span {
	var out []api.Span
	for _, sp := range spans {
		out = append(out, sp)
		out = append(out, flattenSpans(sp.Children)...)
	}
	return out
}

// TestTwoDaemonIslandSolve is the cooperative island smoke: two matchd
// processes each solve half of one I=4 ensemble, exchanging elite
// migrants and P-row blends over the /v1/islands HTTP transport, and
// both must report a result bit-identical to the same ensemble run
// in-process over the in-memory transport. Gated by MATCH_E2E_ISLANDS=1
// (CI runs it under -race); the interesting properties — cross-process
// rendezvous, HTTP JSON float64 round-trips, the global-best reduction
// agreeing on every node — need real sockets, not httptest.
func TestTwoDaemonIslandSolve(t *testing.T) {
	if os.Getenv("MATCH_E2E_ISLANDS") == "" {
		t.Skip("set MATCH_E2E_ISLANDS=1 to run the two-daemon island smoke")
	}
	bin := buildDaemon(t)
	_, baseA := startDaemon(t, bin, "-node", "nodeA")
	_, baseB := startDaemon(t, bin, "-node", "nodeB")
	ctx := context.Background()
	cA, cB := client.New(baseA), client.New(baseB)

	p, err := matchsim.GeneratePaper(11, 20)
	if err != nil {
		t.Fatalf("GeneratePaper: %v", err)
	}
	var inst bytes.Buffer
	if err := p.WriteInstance(&inst); err != nil {
		t.Fatalf("WriteInstance: %v", err)
	}

	// The in-memory reference: the identical ensemble inside one process.
	direct, err := matchsim.SolveMaTCH(p, matchsim.MaTCHOptions{
		Seed: 7, Workers: 1, MaxIterations: 40,
		Islands: &matchsim.IslandOptions{
			Count: 4, Topology: "ring", MigrateEvery: 5, MigrantCount: 2, BlendAlpha: 0.2,
		},
	})
	if err != nil {
		t.Fatalf("SolveMaTCH: %v", err)
	}

	// Each daemon solves two of the four islands; the hosts vector tells
	// it where the others live. Both jobs share the session name.
	submit := func(c *client.Client, hosts []string) api.JobInfo {
		t.Helper()
		info, err := c.Submit(ctx, api.SubmitRequest{
			Instance: inst.Bytes(), Solver: api.SolverMaTCH,
			Options: api.SolverOptions{
				Seed: 7, Workers: 1, MaxIterations: 40,
				Islands: 4, IslandTopology: "ring", MigrateEvery: 5,
				MigrantCount: 2, BlendAlpha: 0.2,
				IslandSession: "e2e-island-smoke", IslandHosts: hosts,
			},
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		return info
	}
	infoA := submit(cA, []string{"", "", baseB, baseB})
	infoB := submit(cB, []string{baseA, baseA, "", ""})

	waitCtx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	results := make([]api.JobResult, 2)
	for i, pair := range []struct {
		c  *client.Client
		id string
	}{{cA, infoA.ID}, {cB, infoB.ID}} {
		final, err := pair.c.Wait(waitCtx, pair.id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("Wait node %d: %v", i, err)
		}
		if final.State != api.StateDone {
			t.Fatalf("node %d job ended %q (error %q), want done", i, final.State, final.Error)
		}
		res, err := pair.c.Result(ctx, pair.id)
		if err != nil {
			t.Fatalf("Result node %d: %v", i, err)
		}
		results[i] = res
	}

	for i, res := range results {
		if res.Exec != direct.Exec {
			t.Errorf("node %d exec %v != in-memory ensemble exec %v", i, res.Exec, direct.Exec)
		}
		if !reflect.DeepEqual(res.Mapping, direct.Mapping) {
			t.Errorf("node %d mapping %v != in-memory ensemble mapping %v", i, res.Mapping, direct.Mapping)
		}
	}

	// Distributed tracing: node A's job rooted a trace, its exchange
	// spans hang under the solve span, and — because each exchange post
	// carries its traceparent — node B holds server spans under the SAME
	// trace ID, parented by A's exchange spans. One trace covers both
	// daemons.
	if infoA.TraceID == "" {
		t.Fatal("node A submission carried no trace ID")
	}
	docA, err := cA.Trace(ctx, infoA.TraceID)
	if err != nil {
		t.Fatalf("Trace on node A: %v", err)
	}
	jobA := findSpanNamed(docA.Spans, "job")
	if jobA == nil {
		t.Fatalf("node A trace has no job span: %+v", docA)
	}
	solveA := findSpanNamed(jobA.Children, "solve")
	if solveA == nil {
		t.Fatalf("node A job span has no solve child: %+v", docA)
	}
	senders := make(map[string]bool) // A-side span IDs that posted to B
	var exchanges int
	for _, sp := range flattenSpans(solveA.Children) {
		if sp.Name == "island.exchange" || sp.Name == "island.finish" {
			senders[sp.SpanID] = true
			if sp.Name == "island.exchange" {
				exchanges++
			}
		}
	}
	if exchanges == 0 {
		t.Fatalf("node A solve span has no island.exchange children: %+v", docA)
	}

	docB, err := cB.Trace(ctx, infoA.TraceID)
	if err != nil {
		t.Fatalf("node B holds no spans for node A's trace %s: %v", infoA.TraceID, err)
	}
	var joined int
	for _, sp := range flattenSpans(docB.Spans) {
		if sp.TraceID != infoA.TraceID {
			t.Errorf("node B span %s (%s) carries trace %s, want %s", sp.SpanID, sp.Name, sp.TraceID, infoA.TraceID)
		}
		if sp.Node != "nodeB" {
			t.Errorf("node B span %s (%s) stamped node %q, want nodeB", sp.SpanID, sp.Name, sp.Node)
		}
		if sp.Name != "POST /v1/islands/{session}/packets" {
			t.Errorf("unexpected span %q on node B under trace %s", sp.Name, infoA.TraceID)
			continue
		}
		if !senders[sp.ParentID] {
			t.Errorf("node B packet span %s parented by %q, not one of node A's exchange spans", sp.SpanID, sp.ParentID)
		}
		joined++
	}
	if joined == 0 {
		t.Errorf("no node B spans joined node A's trace: %+v", docB)
	}
}

// scrapeValue finds an unlabelled sample in a Prometheus text exposition.
func scrapeValue(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

// TestSIGTERMCheckpointAndResume restarts the daemon around an in-flight
// CE job: SIGTERM checkpoints it, the next start resumes and finishes it
// under the original job id.
func TestSIGTERMCheckpointAndResume(t *testing.T) {
	bin := buildDaemon(t)
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	cmd, base := startDaemon(t, bin, "-checkpoint-dir", ckptDir, "-workers", "1")
	ctx := context.Background()
	c := client.New(base)

	p, err := matchsim.GeneratePaper(4, 26)
	if err != nil {
		t.Fatalf("GeneratePaper: %v", err)
	}
	var inst bytes.Buffer
	if err := p.WriteInstance(&inst); err != nil {
		t.Fatalf("WriteInstance: %v", err)
	}
	info, err := c.Submit(ctx, api.SubmitRequest{
		Instance: inst.Bytes(), Solver: api.SolverMaTCH,
		Options: api.SolverOptions{Seed: 3, Workers: 1, MaxIterations: 100000, StallC: 100000, GammaStallWindow: 100000},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait for at least one streamed iteration so a checkpoint exists.
	iterSeen := make(chan struct{})
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	go c.Events(streamCtx, info.ID, func(e api.Event) {
		if e.Kind == "iter" {
			select {
			case iterSeen <- struct{}{}:
			default:
			}
		}
	})
	select {
	case <-iterSeen:
	case <-time.After(30 * time.Second):
		t.Fatal("no iteration observed before shutdown")
	}
	stopStream()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("matchd exited uncleanly: %v", err)
	}
	if _, err := os.Stat(filepath.Join(ckptDir, info.ID+".json")); err != nil {
		t.Fatalf("no checkpoint persisted for interrupted job: %v", err)
	}

	// Restart over the same checkpoint dir; lower the iteration cap is
	// not possible per-job here — cancel-by-convergence would take long,
	// so resume and then simply observe the job is back and running (or
	// already done), then cancel it to finish quickly.
	cmd2, base2 := startDaemon(t, bin, "-checkpoint-dir", ckptDir, "-workers", "1")
	c2 := client.New(base2)
	resumed, err := c2.Info(ctx, info.ID)
	if err != nil {
		t.Fatalf("restored job lost: %v", err)
	}
	if !resumed.Resumed {
		t.Error("restored job not marked resumed")
	}
	if _, err := c2.Cancel(ctx, info.ID); err != nil {
		t.Fatalf("Cancel resumed job: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := c2.Wait(waitCtx, info.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !api.TerminalState(final.State) {
		t.Fatalf("resumed job stuck in %q", final.State)
	}
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM restart: %v", err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Errorf("restarted matchd exited uncleanly: %v", err)
	}
}
