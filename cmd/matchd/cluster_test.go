package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"matchsim"
	"matchsim/api"
	"matchsim/client"
)

// journalDoc mirrors the coordinator's on-disk flight journal — the e2e
// reads it to know a checkpoint has been captured before killing the
// worker, and in doing so pins the journal's wire format.
type journalDoc struct {
	Worker          string `json:"worker"`
	CheckpointIters int    `json:"checkpoint_iters"`
	Jobs            []struct {
		ID string `json:"id"`
	} `json:"jobs"`
}

// TestThreeDaemonClusterSolve is the cluster smoke: one coordinator
// matchd over two worker matchd processes. A batch goes in through
// POST /v1/jobs:batch (with one deliberately broken item to pin the
// per-item statuses), then the worker running the long solve is
// SIGKILLed mid-run — after the coordinator has journalled a checkpoint.
// Every accepted job must complete: the short ones undisturbed and
// bit-identical to a direct library solve, the long one rescued onto the
// survivor with Resumed set. Afterwards the coordinator and the survivor
// must both report matchd_trace_spans_open == 0. Gated by
// MATCH_E2E_CLUSTER=1; CI runs it under -race because the client,
// coordinator routing and telemetry plumbing are concurrent across real
// processes and sockets.
func TestThreeDaemonClusterSolve(t *testing.T) {
	if os.Getenv("MATCH_E2E_CLUSTER") == "" {
		t.Skip("set MATCH_E2E_CLUSTER=1 to run the three-daemon cluster smoke")
	}
	bin := buildDaemon(t)
	stateDir := filepath.Join(t.TempDir(), "cluster-state")

	w0, base0 := startDaemon(t, bin, "-node", "worker0")
	w1, base1 := startDaemon(t, bin, "-node", "worker1")
	workers := map[string]*exec.Cmd{base0: w0, base1: w1}
	_, baseCo := startDaemon(t, bin,
		"-coordinator", "-workers", base0+","+base1,
		"-cluster-state", stateDir,
		"-poll-interval", "10ms", "-checkpoint-every", "1",
		"-node", "coordinator")
	ctx := context.Background()
	c := client.New(baseCo)

	p, err := matchsim.GeneratePaper(2026, 16)
	if err != nil {
		t.Fatalf("GeneratePaper: %v", err)
	}
	var inst bytes.Buffer
	if err := p.WriteInstance(&inst); err != nil {
		t.Fatalf("WriteInstance: %v", err)
	}
	short := func(seed uint64) api.SubmitRequest {
		return api.SubmitRequest{
			Instance: inst.Bytes(), Solver: api.SolverMaTCH,
			Options: api.SolverOptions{Seed: seed, Workers: 1, MaxIterations: 40},
		}
	}
	long := api.SubmitRequest{
		Instance: inst.Bytes(), Solver: api.SolverMaTCH,
		Options: api.SolverOptions{
			Seed: 9, Workers: 1, SampleSize: 400,
			MaxIterations: 2500, StallC: 1 << 20, GammaStallWindow: 1 << 20,
		},
	}
	bad := short(1)
	bad.Solver = "no-such-solver"

	batch, err := c.SubmitBatch(ctx, api.BatchSubmitRequest{
		Jobs: []api.SubmitRequest{short(1), short(2), long, bad},
	})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(batch.Items) != 4 {
		t.Fatalf("batch returned %d items, want 4", len(batch.Items))
	}
	for i := 0; i < 3; i++ {
		if batch.Items[i].Status != http.StatusAccepted || batch.Items[i].Info == nil {
			t.Fatalf("batch item %d: status %d, want accepted", i, batch.Items[i].Status)
		}
	}
	if batch.Items[3].Status != http.StatusBadRequest || batch.Items[3].Error == "" {
		t.Fatalf("broken batch item: status %d error %q, want a per-item 400", batch.Items[3].Status, batch.Items[3].Error)
	}
	longID := batch.Items[2].Info.ID

	// Wait until the coordinator has journalled a checkpoint for the long
	// solve — the moment a worker kill is survivable without losing
	// progress — and learn which worker owns it from the same record.
	var victim string
	deadline := time.Now().Add(60 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never journalled a checkpoint for the long solve")
		}
		entries, _ := os.ReadDir(stateDir)
		for _, ent := range entries {
			raw, err := os.ReadFile(filepath.Join(stateDir, ent.Name()))
			if err != nil {
				continue // mid-rename; re-read next pass
			}
			var doc journalDoc
			if json.Unmarshal(raw, &doc) != nil || doc.CheckpointIters < 1 {
				continue
			}
			for _, j := range doc.Jobs {
				if j.ID == longID {
					victim = doc.Worker
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	victimCmd := workers[victim]
	if victimCmd == nil {
		t.Fatalf("journal names unknown worker %q", victim)
	}
	if err := victimCmd.Process.Kill(); err != nil {
		t.Fatalf("killing worker %s: %v", victim, err)
	}
	victimCmd.Wait()
	t.Logf("killed worker %s mid-solve", victim)

	// Every accepted job completes; the rescued one resumed elsewhere.
	waitCtx, cancel := context.WithTimeout(ctx, 180*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		id := batch.Items[i].Info.ID
		final, err := c.Wait(waitCtx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("Wait job %d: %v", i, err)
		}
		if final.State != api.StateDone {
			t.Fatalf("job %d ended %q (error %q), want done", i, final.State, final.Error)
		}
		if id == longID {
			if !final.Resumed {
				t.Error("rescued long job not marked Resumed")
			}
			if final.Worker == victim {
				t.Errorf("rescued job still attributed to killed worker %s", victim)
			}
		} else if final.Worker == victim && !final.CacheHit {
			// Short jobs finish before the kill; attribution to the victim
			// is fine, they just must already be done (they are, above).
			t.Logf("short job %d had run on the killed worker", i)
		}
	}

	// Undisturbed solves route through the cluster bit-identically to a
	// direct library solve.
	res, err := c.Result(ctx, batch.Items[0].Info.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	direct, err := matchsim.SolveMaTCH(p, matchsim.MaTCHOptions{Seed: 1, Workers: 1, MaxIterations: 40})
	if err != nil {
		t.Fatalf("SolveMaTCH: %v", err)
	}
	if res.Exec != direct.Exec {
		t.Errorf("cluster exec %v != direct exec %v", res.Exec, direct.Exec)
	}

	// Topology reflects the kill, and the routing metrics moved.
	st, err := c.ClusterStatus(ctx)
	if err != nil {
		t.Fatalf("ClusterStatus: %v", err)
	}
	for _, w := range st.Workers {
		if w.URL == victim && w.Up {
			t.Errorf("killed worker %s still reported up", w.URL)
		}
	}
	if st.Handoffs < 1 {
		t.Errorf("cluster status reports %d handoffs, want >= 1", st.Handoffs)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("coordinator Metrics: %v", err)
	}
	for _, name := range []string{"matchd_cluster_jobs_submitted_total", "matchd_cluster_handoffs_total"} {
		if !bytes.Contains([]byte(metrics), []byte(name)) {
			t.Errorf("coordinator metrics missing %s", name)
		}
	}

	// With every job terminal, neither the coordinator nor the survivor
	// may hold an open span.
	survivor := base0
	if victim == base0 {
		survivor = base1
	}
	for _, base := range []string{baseCo, survivor} {
		m, err := client.New(base).Metrics(ctx)
		if err != nil {
			t.Fatalf("Metrics %s: %v", base, err)
		}
		if open, found := scrapeValue(m, "matchd_trace_spans_open"); !found {
			t.Errorf("%s metrics missing matchd_trace_spans_open", base)
		} else if open != 0 {
			t.Errorf("%s matchd_trace_spans_open = %v, want 0 once jobs are terminal", base, open)
		}
	}
}
