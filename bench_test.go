// Benchmarks regenerating the paper's tables and figures, one benchmark
// family per artefact, plus ablation benches for the design choices
// DESIGN.md calls out.
//
// Each benchmark iteration performs one complete (budget-reduced) run of
// the experiment it names, so `go test -bench=. -benchmem` doubles as a
// smoke-regeneration of the whole evaluation section; the full-budget
// protocol lives in cmd/matchbench. BenchmarkTable1/ET_* report the
// measured execution times through b.ReportMetric so the who-wins shape
// is visible directly in benchmark output.
package matchsim

import (
	"fmt"
	"testing"

	"matchsim/internal/core"
	"matchsim/internal/cost"
	"matchsim/internal/exp"
	"matchsim/internal/ga"
	"matchsim/internal/gen"
	"matchsim/internal/heuristics"
	"matchsim/internal/stochmat"
	"matchsim/internal/xrand"
)

// benchEval builds the shared evaluator for one size.
func benchEval(b *testing.B, seed uint64, n int) *cost.Evaluator {
	b.Helper()
	inst, err := gen.PaperInstance(seed, n, gen.DefaultPaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	eval, err := cost.NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		b.Fatal(err)
	}
	return eval
}

// --- Table 1 (ET comparison) and Table 2 (MT comparison) -----------------
//
// One sub-benchmark per size per solver. The benchmark time of the MaTCH
// and GA variants at the same size IS Table 2's MT data; the reported
// "ET" metric is Table 1's quality data.

func BenchmarkTable1_MaTCH(b *testing.B) {
	// The paper's sizes plus n=64, the size the fused-hot-path kernel
	// benchmarks in EXPERIMENTS.md are keyed to.
	for _, n := range append(gen.PaperSizes(), 64) {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			eval := benchEval(b, 2005, n)
			var lastET float64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(eval, core.Options{
					Seed: uint64(i), MaxIterations: 120,
				})
				if err != nil {
					b.Fatal(err)
				}
				lastET = res.Exec
			}
			b.ReportMetric(lastET, "ET-units")
		})
	}
}

func BenchmarkTable1_FastMapGA(b *testing.B) {
	for _, n := range gen.PaperSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			eval := benchEval(b, 2005, n)
			var lastET float64
			for i := 0; i < b.N; i++ {
				res, err := ga.Solve(eval, ga.Options{
					PopulationSize: 200, Generations: 200, Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				lastET = res.Exec
			}
			b.ReportMetric(lastET, "ET-units")
		})
	}
}

// BenchmarkTable2_MappingTime measures pure solver wall-clock (the MT of
// Table 2) at the paper's largest size for both algorithms.
func BenchmarkTable2_MappingTime(b *testing.B) {
	eval := benchEval(b, 2005, 50)
	b.Run("MaTCH/n=50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(eval, core.Options{Seed: uint64(i), MaxIterations: 40}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FastMapGA/n=50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ga.Solve(eval, ga.Options{PopulationSize: 500, Generations: 100, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table 3 (ANOVA study) ------------------------------------------------

func BenchmarkTable3_ANOVA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunANOVA(exp.ANOVAConfig{
			Size: 10, Runs: 6, Seed: uint64(2005 + i),
			GASmallPop: ga.Options{PopulationSize: 50, Generations: 300},
			GALargePop: ga.Options{PopulationSize: 150, Generations: 100},
			MaTCH:      core.Options{MaxIterations: 60},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.ANOVA.F, "F-stat")
		}
	}
}

// --- Figure 3 (stochastic matrix evolution) -------------------------------

func BenchmarkFig3_MatrixEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig3(exp.Fig3Config{
			Size: 10, Seed: uint64(2005 + i), SnapshotEvery: 5,
			MaTCH: core.Options{MaxIterations: 120},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			final := res.Entropies[len(res.Entropies)-1]
			b.ReportMetric(final, "final-entropy-nats")
		}
	}
}

// --- Figures 7, 8, 9 (the sweep the bar charts are drawn from) ------------

func benchSweep(b *testing.B, seed uint64) *exp.SweepResult {
	b.Helper()
	res, err := exp.RunSweep(exp.SweepConfig{
		Sizes:   []int{10, 20, 30},
		Repeats: 1,
		Seed:    seed,
		GA:      ga.Options{PopulationSize: 100, Generations: 100},
		MaTCH:   core.Options{MaxIterations: 50},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkFig7_ExecutionTimeSweep(b *testing.B) {
	var last *exp.SweepResult
	for i := 0; i < b.N; i++ {
		last = benchSweep(b, uint64(2005+i))
	}
	// The headline shape metric: ET ratio at the largest size.
	b.ReportMetric(last.ETRatio(len(last.Sizes)-1), "ET-ratio-largest-n")
}

func BenchmarkFig8_MappingTimeSweep(b *testing.B) {
	var last *exp.SweepResult
	for i := 0; i < b.N; i++ {
		last = benchSweep(b, uint64(3005+i))
	}
	b.ReportMetric(last.MTRatio(len(last.Sizes)-1), "MT-ratio-largest-n")
}

func BenchmarkFig9_TurnaroundSweep(b *testing.B) {
	var last *exp.SweepResult
	for i := 0; i < b.N; i++ {
		last = benchSweep(b, uint64(4005+i))
	}
	idx := len(last.Sizes) - 1
	gaATN := exp.ATN(last.GA[idx], exp.ATNUnitsPerSecond)
	mATN := exp.ATN(last.MaTCH[idx], exp.ATNUnitsPerSecond)
	b.ReportMetric(gaATN/mATN, "ATN-ratio-largest-n")
}

// --- Kernel micro-benchmarks (the fused sample-and-score hot path) --------

// BenchmarkGenPerm isolates one GenPerm permutation draw per sampler
// variant: the linear reference walk, the stream-identical Fenwick
// descent, and the production rejection sampler over the shared row CDF.
// Two matrix regimes bracket a CE run: uniform (iteration 0, worst case
// for rejection late in a draw) and near-degenerate (the pre-stop regime
// where almost every first try hits).
func BenchmarkGenPerm(b *testing.B) {
	const n = 64
	matrices := map[string]*stochmat.Matrix{
		"uniform": stochmat.NewUniform(n, n),
		"peaked":  benchPeakedMatrix(b, n),
	}
	for name, m := range matrices {
		cdf := stochmat.NewRowCDF(m)
		at := stochmat.NewAliasTable(m)
		s := stochmat.NewSampler(n)
		dst := make([]int, n)
		b.Run("linear/"+name, func(b *testing.B) {
			rng := xrand.New(1)
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutation(m, rng, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("fenwick/"+name, func(b *testing.B) {
			rng := xrand.New(1)
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutationFenwick(m, rng, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("fast-cdf/"+name, func(b *testing.B) {
			rng := xrand.New(1)
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutationFast(m, cdf, nil, rng, dst, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("fast-alias/"+name, func(b *testing.B) {
			rng := xrand.New(1)
			for i := 0; i < b.N; i++ {
				if err := s.SamplePermutationFast(m, nil, at, rng, dst, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchPeakedMatrix(b *testing.B, n int) *stochmat.Matrix {
	b.Helper()
	m := stochmat.NewUniform(n, n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = 1e-3
		}
		row[(i*13+5)%n] = 1
		if err := m.SetRow(i, row); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkFusedScore compares one sample+score unit of work: the fused
// draw (makespan accumulated during GenPerm) against drawing and then
// re-walking the mapping with ExecInto.
func BenchmarkFusedScore(b *testing.B) {
	const n = 64
	eval := benchEval(b, 2005, n)
	m := stochmat.NewUniform(n, n)
	at := stochmat.NewAliasTable(m)
	s := stochmat.NewSampler(n)
	dst := make([]int, n)
	b.Run("fused", func(b *testing.B) {
		rng := xrand.New(1)
		ss := cost.NewStreamScorer(eval)
		place := ss.Place
		var sink float64
		for i := 0; i < b.N; i++ {
			ss.Reset()
			if err := s.SamplePermutationFast(m, nil, at, rng, dst, place); err != nil {
				b.Fatal(err)
			}
			sink = ss.Makespan()
		}
		_ = sink
	})
	b.Run("sample-then-exec", func(b *testing.B) {
		rng := xrand.New(1)
		scratch := make([]float64, n)
		var sink float64
		for i := 0; i < b.N; i++ {
			if err := s.SamplePermutationFast(m, nil, at, rng, dst, nil); err != nil {
				b.Fatal(err)
			}
			sink = eval.ExecInto(cost.Mapping(dst), scratch)
		}
		_ = sink
	})
}

// BenchmarkSolveFusedVsUnfused measures the end-to-end effect of the
// fused path on a full MaTCH run (both arms share the fast sampler; the
// difference is the second scoring pass).
func BenchmarkSolveFusedVsUnfused(b *testing.B) {
	eval := benchEval(b, 2005, 64)
	for _, unfused := range []bool{false, true} {
		name := "fused"
		if unfused {
			name = "unfused"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(eval, core.Options{
					Seed: uint64(i), MaxIterations: 120, UnfusedScoring: unfused,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ------------

// BenchmarkAblation_Rho probes the focus parameter: smaller rho = sharper
// elite = faster convergence but higher premature-convergence risk.
func BenchmarkAblation_Rho(b *testing.B) {
	eval := benchEval(b, 2005, 20)
	for _, rho := range []float64{0.01, 0.05, 0.1} {
		b.Run(fmt.Sprintf("rho=%.2f", rho), func(b *testing.B) {
			var lastET float64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(eval, core.Options{Rho: rho, Seed: uint64(i), MaxIterations: 80})
				if err != nil {
					b.Fatal(err)
				}
				lastET = res.Exec
			}
			b.ReportMetric(lastET, "ET-units")
		})
	}
}

// BenchmarkAblation_Zeta probes eq. (13) smoothing; zeta=1 disables it.
func BenchmarkAblation_Zeta(b *testing.B) {
	eval := benchEval(b, 2005, 20)
	for _, zeta := range []float64{0.3, 0.7, 1.0} {
		b.Run(fmt.Sprintf("zeta=%.1f", zeta), func(b *testing.B) {
			var lastET float64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(eval, core.Options{Zeta: zeta, Seed: uint64(i), MaxIterations: 80})
				if err != nil {
					b.Fatal(err)
				}
				lastET = res.Exec
			}
			b.ReportMetric(lastET, "ET-units")
		})
	}
}

// BenchmarkAblation_SampleSize probes the paper's N = 2n^2 rule.
func BenchmarkAblation_SampleSize(b *testing.B) {
	eval := benchEval(b, 2005, 20)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("N=%dn2", k), func(b *testing.B) {
			var lastET float64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(eval, core.Options{
					SampleSize: k * 20 * 20, Seed: uint64(i), MaxIterations: 80,
				})
				if err != nil {
					b.Fatal(err)
				}
				lastET = res.Exec
			}
			b.ReportMetric(lastET, "ET-units")
		})
	}
}

// BenchmarkAblation_Workers measures the worker-pool speedup of the CE
// sampling/scoring fan-out.
func BenchmarkAblation_Workers(b *testing.B) {
	eval := benchEval(b, 2005, 30)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(eval, core.Options{
					Workers: w, Seed: 7, MaxIterations: 20,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Baselines races all solvers on one instance at a
// comparable budget.
func BenchmarkAblation_Baselines(b *testing.B) {
	p, err := GeneratePaper(2005, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MaTCH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveMaTCH(p, MaTCHOptions{Seed: uint64(i), MaxIterations: 60}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Distributed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveDistributed(p, DistributedOptions{Seed: uint64(i), MaxIterations: 60}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveGA(p, GAOptions{PopulationSize: 100, Generations: 100, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveRandom(p, 10000, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LocalSearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveLocalSearch(p, 3, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Annealing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveAnnealing(p, AnnealingOptions{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_GenPermVsNaive quantifies why GenPerm exists: naive
// independent-row sampling plus rejection of non-permutations wastes
// essentially all draws even at small n.
func BenchmarkAblation_GenPermVsNaive(b *testing.B) {
	// See internal/stochmat BenchmarkSamplePermutation50 for the GenPerm
	// cost; here we measure the end-to-end effect: ManyToOne (free-form
	// rows, no masking) vs Solve (GenPerm) on the same square instance.
	eval := benchEval(b, 2005, 15)
	b.Run("GenPerm", func(b *testing.B) {
		var lastET float64
		for i := 0; i < b.N; i++ {
			res, err := core.Solve(eval, core.Options{Seed: uint64(i), MaxIterations: 60})
			if err != nil {
				b.Fatal(err)
			}
			lastET = res.Exec
		}
		b.ReportMetric(lastET, "ET-units")
	})
	b.Run("NaiveRows", func(b *testing.B) {
		var lastET float64
		for i := 0; i < b.N; i++ {
			res, err := core.ManyToOne(eval, core.Options{Seed: uint64(i), MaxIterations: 60})
			if err != nil {
				b.Fatal(err)
			}
			lastET = res.Exec
		}
		b.ReportMetric(lastET, "ET-units")
	})
}

// BenchmarkAblation_Selection compares the paper's roulette GA selection
// against tournament selection at equal budget.
func BenchmarkAblation_Selection(b *testing.B) {
	eval := benchEval(b, 2005, 20)
	for _, arm := range []struct {
		name   string
		scheme ga.SelectionScheme
	}{
		{"roulette", ga.SelectRoulette},
		{"tournament", ga.SelectTournament},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var lastET float64
			for i := 0; i < b.N; i++ {
				res, err := ga.Solve(eval, ga.Options{
					PopulationSize: 100, Generations: 100,
					Selection: arm.scheme, Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				lastET = res.Exec
			}
			b.ReportMetric(lastET, "ET-units")
		})
	}
}

// BenchmarkAblation_WarmStart compares uniform vs greedy-seeded P_0 at a
// tight iteration budget.
func BenchmarkAblation_WarmStart(b *testing.B) {
	eval := benchEval(b, 2005, 20)
	greedy, err := heuristics.Greedy(eval)
	if err != nil {
		b.Fatal(err)
	}
	for _, arm := range []struct {
		name string
		warm cost.Mapping
	}{
		{"uniform", nil},
		{"greedy-seeded", greedy.Mapping},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var lastET float64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(eval, core.Options{
					Seed: uint64(i), MaxIterations: 10, GammaStallWindow: 11,
					WarmStart: arm.warm,
				})
				if err != nil {
					b.Fatal(err)
				}
				lastET = res.Exec
			}
			b.ReportMetric(lastET, "ET-units")
		})
	}
}

// BenchmarkAblation_Polish measures the hybrid CE + 2-swap descent.
func BenchmarkAblation_Polish(b *testing.B) {
	eval := benchEval(b, 2005, 20)
	for _, polish := range []bool{false, true} {
		name := "plain"
		if polish {
			name = "polished"
		}
		b.Run(name, func(b *testing.B) {
			var lastET float64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(eval, core.Options{
					Seed: uint64(i), MaxIterations: 30, GammaStallWindow: 31, Polish: polish,
				})
				if err != nil {
					b.Fatal(err)
				}
				lastET = res.Exec
			}
			b.ReportMetric(lastET, "ET-units")
		})
	}
}
