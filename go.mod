module matchsim

go 1.22
