package matchsim

import (
	"context"
	"time"

	"matchsim/internal/agents"
	"matchsim/internal/ce"
	"matchsim/internal/core"
	"matchsim/internal/ga"
	"matchsim/internal/heuristics"
	"matchsim/internal/island"
)

// Solution is the common result type of every solver.
type Solution struct {
	// Mapping assigns each task to a resource: Mapping[task] = resource.
	Mapping []int
	// Exec is the application execution time of the mapping (the paper's
	// ET, in abstract cost units).
	Exec float64
	// MappingTime is the solver's wall-clock time (the paper's MT).
	MappingTime time.Duration
	// Iterations counts CE iterations or GA generations (0 for one-shot
	// heuristics).
	Iterations int
	// Evaluations counts cost-function evaluations.
	Evaluations int64
	// Solver names the algorithm that produced the solution.
	Solver string
	// StopReason records why the run ended: "completed" for solvers that
	// ran to their natural termination, "cancelled" when the options'
	// Context cut the run short, or the CE-specific reasons
	// ("distribution-converged", "gamma-stall", "max-iterations").
	StopReason string
	// Levels holds per-level telemetry of a multilevel MaTCH run, ordered
	// fine-to-coarse; nil for single-level runs and other solvers.
	Levels []LevelStats

	// coreRes retains the CE engine state of a SolveMaTCH/ResumeMaTCH run
	// so Checkpoint can extract a resumable snapshot.
	coreRes *core.Result
}

// StopCancelled is the Solution.StopReason of a run cut short by its
// options' Context.
const StopCancelled = string(ce.StopCancelled)

// Checkpoint is a resumable snapshot of a MaTCH (CE) run: the stochastic
// matrix, the eq. 12 stability bookkeeping and the incumbent mapping. It
// serialises with Encode and restores with DecodeCheckpoint + ResumeMaTCH.
type Checkpoint = core.Checkpoint

// DecodeCheckpoint parses and validates a checkpoint produced by
// (*Checkpoint).Encode.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	return core.DecodeCheckpoint(data)
}

// Checkpoint extracts a resumable snapshot from a MaTCH solution —
// including one returned early by a cancelled Context. It returns nil for
// solutions produced by other solvers (GA, baselines, many-to-one), which
// carry no CE state.
func (s *Solution) Checkpoint() *Checkpoint {
	if s.coreRes == nil {
		return nil
	}
	return core.CheckpointFrom(s.coreRes)
}

// IterationTrace is per-iteration telemetry passed to option callbacks.
// The solver-internals block is populated by the CE solvers only; the GA
// and baselines report just the score summary.
type IterationTrace struct {
	Iteration int
	// Gamma is the CE elite threshold gamma_k (0 for the GA).
	Gamma float64
	// Best, Mean and Worst summarise the iteration's sample scores.
	Best, Mean, Worst float64
	// BestSoFar is the running optimum.
	BestSoFar float64
	// EliteCount is the size of the iteration's elite set.
	EliteCount int
	// Draws is the number of samples drawn; Pruned and Rescored count the
	// draws whose scoring was cut short by the elite threshold and the
	// subset the rescue path re-scored exactly.
	Draws, Pruned, Rescored int
	// RejectTries and FallbackDraws are GenPerm sampler counters: masked
	// rejection-sampling misses and draws resolved through the compact
	// fallback. SkippedEdges counts TIG edges the gamma-pruned scorer
	// never accumulated.
	RejectTries, FallbackDraws, SkippedEdges uint64
	// SampleNs, SelectNs and UpdateNs are the iteration's phase timings:
	// the sample/score barrier, elite selection, and the distribution
	// update.
	SampleNs, SelectNs, UpdateNs int64
	// StealUnits and IdleNs describe the sampling pool's load balance:
	// work units claimed beyond an even share, and summed worker idle
	// time at the iteration barrier.
	StealUnits int
	IdleNs     int64
	// RebuiltRows and SkippedRows count the distribution-table rows the
	// iteration's update actually rebuilt versus skipped because the row
	// had not changed (sparse-row runs; both 0 on the dense path).
	RebuiltRows, SkippedRows uint64
	// Island labels which island of an island-model run produced this
	// iteration (0 outside island runs); MigrantsIn/MigrantsOut count the
	// elite mappings received/published in the exchange that followed the
	// iteration, and BlendRounds the P-row blending applications.
	Island, MigrantsIn, MigrantsOut, BlendRounds int
}

// MultilevelOptions tunes the multilevel MaTCH pipeline: coarsen the TIG
// and the platform in lockstep by heavy-edge / cheapest-link matching,
// solve the coarse instance with CE, then project the solution back up
// the ladder with 2-swap refinement at every level. Because the CE
// sample budget N = 2n^2 is paid at the coarse n, instances with tens of
// thousands of tasks become solvable in seconds. Zero values take the
// defaults documented per field.
type MultilevelOptions struct {
	// MinCoarse is the vertex count the coarsener aims for (default 128).
	MinCoarse int
	// CoarsenRatio aborts coarsening when one step would keep more than
	// this fraction of the current vertices (default 0.95).
	CoarsenRatio float64
	// RefinePasses caps the refinement passes per level (default 8).
	RefinePasses int
}

// LevelStats is per-level telemetry of a multilevel run, ordered
// fine-to-coarse (index 0 is the original instance).
type LevelStats struct {
	// Tasks and Edges are the instance size at this level.
	Tasks, Edges int
	// CoarsenNs, SolveNs and RefineNs are the phase timings: building the
	// next-coarser level, the coarse CE solve (coarsest level only), and
	// the post-projection refinement (all levels above the coarsest).
	CoarsenNs, SolveNs, RefineNs int64
	// RefinePasses, RefineSwaps and RefineProbes account the refinement
	// work at this level.
	RefinePasses, RefineSwaps int
	RefineProbes              int64
	// Exec is the makespan of this level's mapping after refinement.
	Exec float64
}

// IslandTransport moves exchange packets between cooperating islands;
// see IslandOptions.Transport. The in-memory default suffices inside one
// process — matchd wires an HTTP-backed implementation for multi-node
// jobs.
type IslandTransport = island.Transport

// IslandOptions runs MaTCH as an island-model ensemble: Count
// independent CE searches over private stochastic matrices (each island
// draws SampleSize/Count mappings per iteration from RNG streams keyed
// (seed, island, iter, unit)), exchanging state every MigrateEvery
// iterations — elite-mapping migration folded in through one extra
// eq. (13) step, and/or convex P-row blending. Results are
// bit-reproducible per (Seed, Topology, Count) regardless of worker
// counts or scheduling. Island runs are not checkpointable and do not
// combine with Multilevel.
type IslandOptions struct {
	// Count is the total number of islands (across all nodes of a
	// cooperative run); <= 1 disables island mode.
	Count int
	// Topology is the exchange graph: "ring" (default) or "all".
	Topology string
	// MigrateEvery is the exchange period in CE iterations (default 10).
	MigrateEvery int
	// MigrantCount is the elite mappings each island publishes per
	// exchange; 0 defaults to 4, negative disables migration.
	MigrantCount int
	// BlendAlpha in [0, 1) blends each P row towards the mean of the
	// peers' rows; 0 disables blending.
	BlendAlpha float64
	// Transport, when non-nil, replaces the in-process exchange — matchd
	// uses it to spread one job's islands across daemon nodes.
	Transport IslandTransport
	// Remote, when non-nil, has Count entries marking islands solved on
	// other nodes; requires an explicit Transport.
	Remote []bool
}

// MaTCHOptions tunes the MaTCH solver. Zero values take the paper's
// defaults: N = 2n^2 samples per iteration, rho = 0.05, zeta = 0.3,
// stall constant c = 5.
type MaTCHOptions struct {
	// SampleSize is N, the mappings drawn per CE iteration.
	SampleSize int
	// Rho is the focus parameter in (0, 0.5].
	Rho float64
	// Zeta is the smoothing factor of eq. (13) in (0, 1].
	Zeta float64
	// StallC is the eq. (12) stability constant.
	StallC int
	// GammaStallWindow is the generic CE quantile-stall stop (default
	// 25 iterations without gamma improving). Raise it together with
	// StallC and MaxIterations for effectively unbounded runs that end
	// only by convergence or cancellation.
	GammaStallWindow int
	// MaxIterations caps the CE loop (default 1000).
	MaxIterations int
	// Workers parallelises sampling and scoring (default GOMAXPROCS).
	Workers int
	// Seed makes the run deterministic together with Workers.
	Seed uint64
	// WarmStart, when non-nil, biases the initial sampling distribution
	// towards this mapping (must be a permutation of the task set) —
	// e.g. the result of SolveGreedy or a previous run.
	WarmStart []int
	// Polish runs 2-swap local descent on the best mapping after the CE
	// loop ends (hybrid extension; only applies to SolveMaTCH).
	Polish bool
	// UnprunedScoring disables the gamma-pruned fused scorer and scores
	// every draw exactly. The search trajectory and result are identical
	// either way (pruning is a pure strength reduction); the switch
	// exists for benchmarking and as an escape hatch.
	UnprunedScoring bool
	// Multilevel, when non-nil, routes the solve through the multilevel
	// coarsen/solve/refine pipeline — the large-n configuration. Such
	// runs are not checkpointable and report per-level stats in
	// Solution.Levels.
	Multilevel *MultilevelOptions
	// Islands, when non-nil with Count > 1, runs the island-model
	// ensemble; see IslandOptions. Mutually exclusive with Multilevel.
	Islands *IslandOptions
	// SparseEps enables the sparse-row distribution update: after each
	// eq. (13) smoothing step, row entries below SparseEps times the row
	// maximum are truncated to exactly zero and the row renormalised, so
	// converged rows become exact fixed points whose sampling tables are
	// never rebuilt. 0 keeps the bit-exact legacy update; 1e-4 is a
	// reasonable strength for large instances.
	SparseEps float64
	// SparseCut bounds the per-row support size the sparse path tracks:
	// rows with more nonzeros than this fall back to dense handling.
	// 0 derives max(16, n/4); negative disables support tracking while
	// keeping the SparseEps truncation (a differential-testing arm).
	SparseCut int
	// Context, when non-nil, cancels the run: the solver stops within at
	// most one iteration. A run with at least one completed iteration
	// returns its best-so-far Solution with StopReason "cancelled" (and,
	// for SolveMaTCH, a non-nil Checkpoint); earlier cancellation returns
	// the context's error.
	Context context.Context
	// OnIteration, when non-nil, receives telemetry each iteration.
	OnIteration func(IterationTrace)
	// CheckpointEvery > 0, together with OnCheckpoint, exports a resumable
	// Checkpoint every that-many iterations while the solve is running, so
	// a supervisor can rescue the job if the process dies without a clean
	// shutdown. Export never perturbs the search (results stay
	// bit-identical). Only plain single-population runs export; multilevel
	// and island runs ignore these fields.
	CheckpointEvery int
	// OnCheckpoint receives each exported checkpoint (caller owns it). It
	// runs on the solver goroutine between iterations.
	OnCheckpoint func(*Checkpoint)
}

// SolveMaTCH runs the paper's primary contribution on the problem.
// It requires |Vt| = |Vr| (the paper's experimental setting); use
// SolveMaTCHManyToOne for the general case.
func SolveMaTCH(p *Problem, opts MaTCHOptions) (*Solution, error) {
	res, err := core.Solve(p.evaluator(), coreOptions(opts))
	if err != nil {
		return nil, err
	}
	return matchSolution(res), nil
}

// ResumeMaTCH continues a checkpointed MaTCH run on the same problem. The
// returned Solution's effort counters cover only the new iterations, but
// its Mapping/Exec incorporate the checkpoint's incumbent.
func ResumeMaTCH(p *Problem, c *Checkpoint, opts MaTCHOptions) (*Solution, error) {
	res, err := core.Resume(p.evaluator(), c, coreOptions(opts))
	if err != nil {
		return nil, err
	}
	return matchSolution(res), nil
}

func matchSolution(res *core.Result) *Solution {
	s := &Solution{
		Mapping:     res.Mapping,
		Exec:        res.Exec,
		MappingTime: res.MappingTime,
		Iterations:  res.Iterations,
		Evaluations: res.Evaluations,
		Solver:      "MaTCH",
		StopReason:  string(res.StopReason),
		coreRes:     res,
	}
	if res.Islands > 0 {
		s.Solver = "MaTCH-islands"
	}
	if len(res.Levels) > 0 {
		s.Solver = "MaTCH-multilevel"
		s.Levels = make([]LevelStats, len(res.Levels))
		for i, lv := range res.Levels {
			s.Levels[i] = LevelStats{
				Tasks:        lv.Tasks,
				Edges:        lv.Edges,
				CoarsenNs:    lv.CoarsenNs,
				SolveNs:      lv.SolveNs,
				RefineNs:     lv.RefineNs,
				RefinePasses: lv.RefinePasses,
				RefineSwaps:  lv.RefineSwaps,
				RefineProbes: lv.RefineProbes,
				Exec:         lv.Exec,
			}
		}
	}
	return s
}

// SolveMaTCHManyToOne runs the generalised MaTCH that permits any number
// of tasks per resource (|Vt| independent of |Vr|).
func SolveMaTCHManyToOne(p *Problem, opts MaTCHOptions) (*Solution, error) {
	res, err := core.ManyToOne(p.evaluator(), coreOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Solution{
		Mapping:     res.Mapping,
		Exec:        res.Exec,
		MappingTime: res.MappingTime,
		Iterations:  res.Iterations,
		Evaluations: res.Evaluations,
		Solver:      "MaTCH-many-to-one",
		StopReason:  string(res.StopReason),
	}, nil
}

func coreOptions(opts MaTCHOptions) core.Options {
	o := core.Options{
		SampleSize:       opts.SampleSize,
		Rho:              opts.Rho,
		Zeta:             opts.Zeta,
		StallC:           opts.StallC,
		GammaStallWindow: opts.GammaStallWindow,
		MaxIterations:    opts.MaxIterations,
		Workers:          opts.Workers,
		Seed:             opts.Seed,
		WarmStart:        opts.WarmStart,
		Polish:           opts.Polish,
		UnprunedScoring:  opts.UnprunedScoring,
		SparseEps:        opts.SparseEps,
		SparseCut:        opts.SparseCut,
		Context:          opts.Context,
		CheckpointEvery:  opts.CheckpointEvery,
		OnCheckpoint:     opts.OnCheckpoint,
	}
	if opts.Multilevel != nil {
		o.Multilevel = &core.MultilevelOptions{
			MinCoarse:    opts.Multilevel.MinCoarse,
			CoarsenRatio: opts.Multilevel.CoarsenRatio,
			RefinePasses: opts.Multilevel.RefinePasses,
		}
	}
	if opts.Islands != nil {
		o.Islands = &core.IslandOptions{
			Count:        opts.Islands.Count,
			Topology:     opts.Islands.Topology,
			MigrateEvery: opts.Islands.MigrateEvery,
			MigrantCount: opts.Islands.MigrantCount,
			BlendAlpha:   opts.Islands.BlendAlpha,
			Transport:    opts.Islands.Transport,
			Remote:       opts.Islands.Remote,
		}
	}
	if opts.OnIteration != nil {
		cb := opts.OnIteration
		o.OnIteration = func(st ce.IterStats) {
			cb(IterationTrace{
				Iteration:     st.Iter,
				Gamma:         st.Gamma,
				Best:          st.Best,
				Mean:          st.Mean,
				Worst:         st.Worst,
				BestSoFar:     st.BestSoFar,
				EliteCount:    st.EliteCount,
				Draws:         st.Draws,
				Pruned:        st.Pruned,
				Rescored:      st.Rescored,
				RejectTries:   st.RejectTries,
				FallbackDraws: st.FallbackDraws,
				SkippedEdges:  st.SkippedEdges,
				SampleNs:      st.SampleNs,
				SelectNs:      st.SelectNs,
				UpdateNs:      st.UpdateNs,
				StealUnits:    st.StealUnits,
				IdleNs:        st.IdleNs,
				RebuiltRows:   st.RebuiltRows,
				SkippedRows:   st.SkippedRows,
				Island:        st.Island,
				MigrantsIn:    st.MigrantsIn,
				MigrantsOut:   st.MigrantsOut,
				BlendRounds:   st.BlendRounds,
			})
		}
	}
	return o
}

// GAOptions tunes the FastMap-GA baseline. Zero values take the paper's
// experimental configuration: population 500, 1000 generations, crossover
// probability 0.85, mutation probability 0.07, elitism on.
type GAOptions struct {
	PopulationSize int
	Generations    int
	CrossoverProb  float64
	MutationProb   float64
	// Workers parallelises fitness evaluation (default GOMAXPROCS).
	Workers int
	Seed    uint64
	// Context, when non-nil, cancels the run at generation granularity
	// (same contract as MaTCHOptions.Context).
	Context context.Context
	// OnGeneration, when non-nil, receives telemetry each generation.
	OnGeneration func(IterationTrace)
}

// SolveGA runs the FastMap-GA baseline (Section 5.1 of the paper).
func SolveGA(p *Problem, opts GAOptions) (*Solution, error) {
	o := ga.Options{
		PopulationSize: opts.PopulationSize,
		Generations:    opts.Generations,
		CrossoverProb:  opts.CrossoverProb,
		MutationProb:   opts.MutationProb,
		Workers:        opts.Workers,
		Seed:           opts.Seed,
		Context:        opts.Context,
	}
	if opts.OnGeneration != nil {
		cb := opts.OnGeneration
		o.OnGeneration = func(g ga.GenStats) {
			cb(IterationTrace{
				Iteration: g.Gen,
				Best:      g.BestExec,
				Mean:      g.MeanExec,
				Worst:     g.WorstExec,
				BestSoFar: g.BestSoFar,
			})
		}
	}
	res, err := ga.Solve(p.evaluator(), o)
	if err != nil {
		return nil, err
	}
	stop := "completed"
	if res.Cancelled {
		stop = StopCancelled
	}
	return &Solution{
		Mapping:     res.Mapping,
		Exec:        res.Exec,
		MappingTime: res.MappingTime,
		Iterations:  res.Generations,
		Evaluations: res.Evaluations,
		Solver:      "FastMap-GA",
		StopReason:  stop,
	}, nil
}

// DistributedOptions tunes the agent-based distributed MaTCH (the
// paper's future-work design). Zero values take MaTCH defaults with
// NumAgents = GOMAXPROCS.
type DistributedOptions struct {
	NumAgents     int
	SampleSize    int
	Rho           float64
	Zeta          float64
	StallC        int
	MaxIterations int
	Seed          uint64
	// Context, when non-nil, cancels the protocol at round granularity
	// (same contract as MaTCHOptions.Context).
	Context context.Context
}

// SolveDistributed runs the message-passing agent implementation of
// MaTCH: row ownership of the stochastic matrix is partitioned across
// agents that communicate only by messages.
func SolveDistributed(p *Problem, opts DistributedOptions) (*Solution, error) {
	res, err := agents.Solve(p.evaluator(), agents.Options{
		NumAgents:     opts.NumAgents,
		SampleSize:    opts.SampleSize,
		Rho:           opts.Rho,
		Zeta:          opts.Zeta,
		StallC:        opts.StallC,
		MaxIterations: opts.MaxIterations,
		Seed:          opts.Seed,
		Context:       opts.Context,
	})
	if err != nil {
		return nil, err
	}
	stop := "completed"
	if res.Cancelled {
		stop = StopCancelled
	}
	return &Solution{
		Mapping:     res.Mapping,
		Exec:        res.Exec,
		MappingTime: res.MappingTime,
		Iterations:  res.Iterations,
		Evaluations: res.Evaluations,
		Solver:      "MaTCH-distributed",
		StopReason:  stop,
	}, nil
}

// SolveRandom draws `samples` uniform random mappings and keeps the best.
func SolveRandom(p *Problem, samples int, seed uint64) (*Solution, error) {
	return SolveRandomContext(context.Background(), p, samples, seed)
}

// SolveRandomContext is SolveRandom with cancellation: ctx aborts the
// search between draws.
func SolveRandomContext(ctx context.Context, p *Problem, samples int, seed uint64) (*Solution, error) {
	res, err := heuristics.RandomSearch(ctx, p.evaluator(), samples, seed)
	if err != nil {
		return nil, err
	}
	return baselineSolution(res, "RandomSearch"), nil
}

// SolveGreedy builds a mapping constructively, heaviest task first.
func SolveGreedy(p *Problem) (*Solution, error) {
	res, err := heuristics.Greedy(p.evaluator())
	if err != nil {
		return nil, err
	}
	return baselineSolution(res, "Greedy"), nil
}

// SolveLocalSearch runs steepest-descent 2-swap hill climbing with the
// given number of random restarts.
func SolveLocalSearch(p *Problem, restarts int, seed uint64) (*Solution, error) {
	return SolveLocalSearchContext(context.Background(), p, restarts, seed)
}

// SolveLocalSearchContext is SolveLocalSearch with cancellation: ctx
// aborts the search between descent steps.
func SolveLocalSearchContext(ctx context.Context, p *Problem, restarts int, seed uint64) (*Solution, error) {
	res, err := heuristics.LocalSearch(ctx, p.evaluator(), restarts, seed)
	if err != nil {
		return nil, err
	}
	return baselineSolution(res, "LocalSearch"), nil
}

// AnnealingOptions tunes SolveAnnealing; zero values derive sensible
// defaults from the instance.
type AnnealingOptions struct {
	InitialTemp float64
	CoolingRate float64
	Steps       int
	Seed        uint64
	// Context, when non-nil, cancels the schedule between moves.
	Context context.Context
}

// SolveAnnealing runs Metropolis simulated annealing over 2-swap moves.
func SolveAnnealing(p *Problem, opts AnnealingOptions) (*Solution, error) {
	res, err := heuristics.SimulatedAnnealing(p.evaluator(), heuristics.AnnealOptions{
		InitialTemp: opts.InitialTemp,
		CoolingRate: opts.CoolingRate,
		Steps:       opts.Steps,
		Seed:        opts.Seed,
		Context:     opts.Context,
	})
	if err != nil {
		return nil, err
	}
	return baselineSolution(res, "SimulatedAnnealing"), nil
}

func baselineSolution(res *heuristics.Result, name string) *Solution {
	return &Solution{
		Mapping:     res.Mapping,
		Exec:        res.Exec,
		MappingTime: res.MappingTime,
		Evaluations: res.Evaluations,
		Solver:      name,
		StopReason:  "completed",
	}
}
