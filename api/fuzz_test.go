package api

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzJobSpecJSON fuzzes the daemon's submission document. Decoding must
// never panic, and any accepted request must round-trip: marshal →
// unmarshal preserves the solver, every option, and the instance
// payload's JSON value; a second marshal is byte-stable.
func FuzzJobSpecJSON(f *testing.F) {
	f.Add([]byte(`{"instance":{"tig":{"n":2,"weights":[1,2],"edges":[[0,1,50]]},"platform":{"n":2,"weights":[1,1],"links":[[0,1,10]]}},"solver":"match","options":{"seed":7,"workers":2,"sample_size":8,"rho":0.05,"zeta":0.3,"max_iterations":100}}`))
	f.Add([]byte(`{"solver":"ga","options":{"population_size":50,"generations":10,"crossover_prob":0.9,"mutation_prob":0.02}}`))
	f.Add([]byte(`{"instance":null,"solver":"","options":{}}`))
	f.Add([]byte(`{"options":{"seed":18446744073709551615}}`))
	f.Add([]byte(`{"solver":"anneal","options":{"steps":-3,"unpruned_scoring":true,"polish":true}}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var r1 SubmitRequest
		if err := json.Unmarshal(data, &r1); err != nil {
			return
		}
		b1, err := json.Marshal(&r1)
		if err != nil {
			t.Fatalf("accepted request failed to marshal: %v", err)
		}
		var r2 SubmitRequest
		if err := json.Unmarshal(b1, &r2); err != nil {
			t.Fatalf("marshalled request rejected: %v\n%s", err, b1)
		}
		if r2.Solver != r1.Solver {
			t.Fatalf("solver changed in round trip: %q != %q", r2.Solver, r1.Solver)
		}
		if !reflect.DeepEqual(r2.Options, r1.Options) {
			t.Fatalf("options changed in round trip:\n%+v\n%+v", r1.Options, r2.Options)
		}
		// The instance is a raw payload: compare as JSON values (the
		// encoder may compact whitespace).
		var v1, v2 any
		if len(r1.Instance) > 0 {
			if err := json.Unmarshal(r1.Instance, &v1); err != nil {
				t.Fatalf("accepted instance payload is not JSON: %v", err)
			}
		}
		if len(r2.Instance) > 0 {
			if err := json.Unmarshal(r2.Instance, &v2); err != nil {
				t.Fatalf("round-tripped instance payload is not JSON: %v", err)
			}
		}
		if !reflect.DeepEqual(v1, v2) {
			t.Fatalf("instance payload changed in round trip:\n%s\n%s", r1.Instance, r2.Instance)
		}
		b2, err := json.Marshal(&r2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("marshal not stable:\n%s\n%s", b1, b2)
		}
	})
}
