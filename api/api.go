// Package api defines the wire types of the matchd mapping service: job
// submission requests, job status and result documents, and the
// server-sent progress events. It is shared by the daemon (cmd/matchd,
// internal/httpapi, internal/jobs) and the Go client (package client),
// and doubles as the JSON schema reference for non-Go consumers.
//
// All documents are plain JSON. Progress events reuse the field layout of
// the repo's JSONL trace schema (internal/trace), so a concatenation of a
// job's SSE `data:` payloads is a valid trace stream.
package api

import (
	"encoding/json"
	"fmt"
	"time"
)

// Solver names accepted by SubmitRequest.Solver.
const (
	SolverMaTCH       = "match"       // the paper's CE heuristic (|Vt| = |Vr|)
	SolverManyToOne   = "match-m2o"   // generalised CE (any |Vt|, |Vr|)
	SolverGA          = "ga"          // FastMap-GA baseline
	SolverDistributed = "distributed" // agent-based MaTCH
	SolverRandom      = "random"      // uniform random search
	SolverGreedy      = "greedy"      // constructive greedy
	SolverLocal       = "local"       // 2-swap hill climbing
	SolverAnneal      = "anneal"      // simulated annealing
)

// SolverOptions carries every tunable a job may set. Zero values take the
// solver's documented defaults. Only the fields relevant to the chosen
// solver are read.
type SolverOptions struct {
	// Seed and Workers together determine a deterministic run: the same
	// (instance, solver, options) submission produces a bit-identical
	// mapping to a direct library call with the same parameters.
	Seed    uint64 `json:"seed,omitempty"`
	Workers int    `json:"workers,omitempty"`

	// CE (match, match-m2o, distributed) knobs.
	SampleSize int     `json:"sample_size,omitempty"`
	Rho        float64 `json:"rho,omitempty"`
	Zeta       float64 `json:"zeta,omitempty"`
	StallC     int     `json:"stall_c,omitempty"`
	// GammaStallWindow is the generic CE quantile-stall stop (default 25
	// iterations without improvement). Raise it with StallC and
	// MaxIterations for jobs that should run until convergence or
	// cancellation.
	GammaStallWindow int  `json:"gamma_stall_window,omitempty"`
	MaxIterations    int  `json:"max_iterations,omitempty"`
	Polish           bool `json:"polish,omitempty"`
	// UnprunedScoring disables gamma-pruned scoring and evaluates every
	// draw exactly; the mapping is identical either way (an escape hatch
	// and benchmarking knob, not a quality setting).
	UnprunedScoring bool `json:"unpruned_scoring,omitempty"`
	NumAgents       int  `json:"num_agents,omitempty"` // distributed only

	// Multilevel routes a match job through the coarsen/solve/refine
	// pipeline (large instances); the remaining fields tune it and the
	// sparse-row distribution update. Zero values take the library
	// defaults (see matchsim.MultilevelOptions / MaTCHOptions).
	Multilevel   bool    `json:"multilevel,omitempty"`
	MinCoarse    int     `json:"min_coarse,omitempty"`
	CoarsenRatio float64 `json:"coarsen_ratio,omitempty"`
	RefinePasses int     `json:"refine_passes,omitempty"`
	SparseEps    float64 `json:"sparse_eps,omitempty"`
	SparseCut    int     `json:"sparse_cut,omitempty"`

	// Islands routes a match job through the island-model ensemble: I
	// independent CE islands exchanging elites and blending P-matrix rows
	// every MigrateEvery iterations. Islands <= 1 keeps the plain
	// single-population path (bit-identical). Mutually exclusive with
	// Multilevel. Zero values of the remaining knobs take the library
	// defaults (see matchsim.IslandOptions).
	Islands        int     `json:"islands,omitempty"`
	IslandTopology string  `json:"island_topology,omitempty"`
	MigrateEvery   int     `json:"migrate_every,omitempty"`
	MigrantCount   int     `json:"migrant_count,omitempty"`
	BlendAlpha     float64 `json:"blend_alpha,omitempty"`
	// IslandSession and IslandHosts configure the HTTP transport for a
	// multi-daemon cooperative solve: hosts[g] is the base URL of the
	// matchd node running island g ("" = this node), and IslandSession
	// names the shared exchange session on every node's island board.
	// Leave IslandHosts empty for a single-node (in-memory) ensemble.
	IslandSession string   `json:"island_session,omitempty"`
	IslandHosts   []string `json:"island_hosts,omitempty"`

	// GA knobs.
	PopulationSize int     `json:"population_size,omitempty"`
	Generations    int     `json:"generations,omitempty"`
	CrossoverProb  float64 `json:"crossover_prob,omitempty"`
	MutationProb   float64 `json:"mutation_prob,omitempty"`

	// Baseline knobs.
	Budget   int `json:"budget,omitempty"`   // random-search samples
	Restarts int `json:"restarts,omitempty"` // local-search restarts
	Steps    int `json:"steps,omitempty"`    // annealing moves
}

// SubmitRequest is the body of POST /v1/jobs.
//
// CheckpointEvery and Checkpoint live outside Options deliberately: the
// job's content-address Key hashes (instance, solver, options) only, so
// supervision details — how often the run exports rescue checkpoints, or
// that a submission resumes an interrupted run — never change which cache
// entry a job maps to.
type SubmitRequest struct {
	// Instance is the problem instance JSON (the matchgen format: a
	// {"tig": ..., "platform": ...} document).
	Instance json.RawMessage `json:"instance"`
	// Solver selects the algorithm; see the Solver* constants.
	Solver string `json:"solver"`
	// Options tunes the solver; zero values take defaults.
	Options SolverOptions `json:"options"`
	// CheckpointEvery > 0 asks a match job to export a resumable
	// checkpoint every that-many CE iterations, retrievable while the job
	// runs from GET /v1/jobs/{id}/checkpoint. The cluster coordinator sets
	// it so a dead worker's jobs can be handed off mid-solve. Only plain
	// (non-multilevel, non-island) match runs export.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Checkpoint, when non-empty, submits the job as a resumption of an
	// interrupted run: the encoded checkpoint (a core.Checkpoint JSON
	// document) seeds the solve, the job reports Resumed, and — because a
	// resumed trajectory is not bit-identical to a fresh solve — the
	// result is excluded from the deterministic result cache.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// BatchSubmitRequest is the body of POST /v1/jobs:batch — a bulk
// submission that amortises per-request overhead.
type BatchSubmitRequest struct {
	Jobs []SubmitRequest `json:"jobs"`
}

// BatchSubmitItem is one per-job outcome inside BatchSubmitResponse.
// Exactly one of Info and Error is meaningful: accepted jobs carry their
// status document, rejected ones the error message and the HTTP status
// the same submission would have received on POST /v1/jobs.
type BatchSubmitItem struct {
	Info   *JobInfo `json:"info,omitempty"`
	Error  string   `json:"error,omitempty"`
	Status int      `json:"status"`
}

// BatchSubmitResponse is the body returned by POST /v1/jobs:batch, with
// Items[i] the outcome of Jobs[i]. The response is 200 even when some
// items fail — partial failure is per-item, not per-request.
type BatchSubmitResponse struct {
	Items []BatchSubmitItem `json:"items"`
}

// CheckpointDoc is the document returned by GET /v1/jobs/{id}/checkpoint:
// the job's latest exported checkpoint (see SubmitRequest.CheckpointEvery)
// or, for a cancelled job, its final interrupted-state checkpoint.
type CheckpointDoc struct {
	JobID string `json:"job_id"`
	// Iterations is the checkpoint's completed-iteration count.
	Iterations int `json:"iterations"`
	// Checkpoint is the encoded core.Checkpoint, resubmittable verbatim as
	// SubmitRequest.Checkpoint.
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// TerminalState reports whether a job state is final.
func TerminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobInfo is the status document returned by POST /v1/jobs,
// GET /v1/jobs/{id} and DELETE /v1/jobs/{id}.
type JobInfo struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Solver string `json:"solver"`
	// Key is the content hash of (instance, solver, options) — identical
	// submissions share it and hit the result cache.
	Key     string    `json:"key"`
	Created time.Time `json:"created"`
	// Started and Finished are zero until the job reaches the
	// corresponding lifecycle point.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Error explains a failed job.
	Error string `json:"error,omitempty"`
	// CacheHit marks a job satisfied from the result cache without
	// running the solver.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Resumed marks a job restored from a persisted checkpoint after a
	// daemon restart.
	Resumed bool `json:"resumed,omitempty"`
	// DegradedResume marks a resumed job whose original options requested
	// a mode the checkpoint cannot restore (multilevel pipeline or island
	// ensemble): the job re-ran on the plain single-population path warm-
	// started from the checkpoint, so its trajectory differs from an
	// uninterrupted run.
	DegradedResume bool `json:"degraded_resume,omitempty"`
	// TraceID is the distributed-trace identifier covering this job's
	// whole lifecycle (submission, queueing, solve, island exchanges on
	// other nodes, checkpoint/resume). Empty when the daemon runs with
	// tracing disabled. Fetch the span tree from GET /v1/traces/{TraceID}.
	TraceID string `json:"trace_id,omitempty"`
	// Worker is the base URL of the worker node a coordinator routed this
	// job to. Empty on standalone daemons.
	Worker string `json:"worker,omitempty"`
}

// JobResult is the document returned by GET /v1/jobs/{id}/result.
type JobResult struct {
	// Mapping assigns each task to a resource: mapping[task] = resource.
	Mapping []int `json:"mapping"`
	// Exec is the application execution time of the mapping (the paper's
	// ET, abstract cost units).
	Exec float64 `json:"exec"`
	// Iterations counts CE iterations or GA generations.
	Iterations int `json:"iterations,omitempty"`
	// Evaluations counts cost-function evaluations performed by the run
	// that produced this result (a cache hit performs zero new ones).
	Evaluations int64 `json:"evaluations"`
	// MappingTime is the solver wall-clock time in nanoseconds.
	MappingTime time.Duration `json:"mapping_time_ns"`
	// Solver echoes the algorithm name.
	Solver string `json:"solver"`
	// StopReason records why the run ended (e.g. "distribution-converged",
	// "completed", "cancelled").
	StopReason string `json:"stop_reason,omitempty"`
	// CacheHit marks a result served from the cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// Event is one progress event, streamed over GET /v1/jobs/{id}/events as
// SSE data payloads. The JSON layout matches the internal trace schema:
// one "start" event, one "iter" event per CE iteration / GA generation,
// and one "end" event.
type Event struct {
	Kind string `json:"kind"` // "start" | "iter" | "end"
	// Run identity (start events). Seed has no omitempty: 0 is a valid
	// seed and must survive the wire round-trip.
	Solver string `json:"solver,omitempty"`
	Tasks  int    `json:"tasks,omitempty"`
	Seed   uint64 `json:"seed"`
	// Per-iteration payload. Iter has no omitempty: resumed runs may
	// re-emit iteration 0.
	Iter      int     `json:"iter"`
	Gamma     float64 `json:"gamma,omitempty"`
	Best      float64 `json:"best,omitempty"`
	Worst     float64 `json:"worst,omitempty"`
	Mean      float64 `json:"mean,omitempty"`
	BestSoFar float64 `json:"best_so_far,omitempty"`
	// Elite is the size of the iteration's elite set.
	Elite int `json:"elite,omitempty"`
	// Solver internals (CE iterations; zero for other solvers): draw
	// accounting, GenPerm sampler counters, gamma-pruning effectiveness,
	// phase timings and worker-pool barrier behaviour. See the matching
	// fields of the internal trace schema.
	Draws         int    `json:"draws,omitempty"`
	Pruned        int    `json:"pruned,omitempty"`
	Rescored      int    `json:"rescored,omitempty"`
	RejectTries   uint64 `json:"reject_tries,omitempty"`
	FallbackDraws uint64 `json:"fallback_draws,omitempty"`
	SkippedEdges  uint64 `json:"skipped_edges,omitempty"`
	SampleNs      int64  `json:"sample_ns,omitempty"`
	SelectNs      int64  `json:"select_ns,omitempty"`
	UpdateNs      int64  `json:"update_ns,omitempty"`
	StealUnits    int    `json:"steal_units,omitempty"`
	IdleNs        int64  `json:"idle_ns,omitempty"`
	RebuiltRows   uint64 `json:"rebuilt_rows,omitempty"`
	SkippedRows   uint64 `json:"skipped_rows,omitempty"`
	// Island-model telemetry (island runs only): which island produced
	// this iteration and its exchange-round activity.
	Island      int `json:"island,omitempty"`
	MigrantsIn  int `json:"migrants_in,omitempty"`
	MigrantsOut int `json:"migrants_out,omitempty"`
	BlendRounds int `json:"blend_rounds,omitempty"`
	// Run outcome (end events).
	Exec        float64       `json:"exec,omitempty"`
	Iterations  int           `json:"iterations,omitempty"`
	Evaluations int64         `json:"evaluations,omitempty"`
	MappingTime time.Duration `json:"mapping_time_ns,omitempty"`
	StopReason  string        `json:"stop_reason,omitempty"`
}

// SpanEvent is one timestamped annotation inside a span, offset
// monotonically from the span start (per-iteration solver events carry
// gamma, best-so-far and phase timings as string attributes).
type SpanEvent struct {
	Name     string            `json:"name"`
	OffsetNs int64             `json:"offset_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Span is one node of the span tree served by GET /v1/traces/{id}.
// Children are nested; a span whose parent lives on another daemon (or
// was evicted from the ring) appears as a root of the document.
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// Node names the daemon that produced the span — cross-node traces
	// interleave spans from every cooperating matchd.
	Node          string            `json:"node,omitempty"`
	Start         time.Time         `json:"start"`
	DurationNs    int64             `json:"duration_ns"`
	Status        string            `json:"status,omitempty"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Events        []SpanEvent       `json:"events,omitempty"`
	DroppedEvents int               `json:"dropped_events,omitempty"`
	Children      []Span            `json:"children,omitempty"`
}

// TraceDoc is the document returned by GET /v1/traces/{id}: the trace's
// retained spans assembled into parent/child trees.
type TraceDoc struct {
	TraceID string `json:"trace_id"`
	// SpanCount is the total number of spans in the document (the roots
	// plus every nested child).
	SpanCount int `json:"span_count"`
	// Spans holds the root spans, children nested, sorted by start time.
	Spans []Span `json:"spans"`
}

// TraceSummary is one row of GET /v1/traces (most recent first).
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Node       string    `json:"node,omitempty"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	Spans      int       `json:"spans"`
}

// ClusterWorker is one worker node's row in ClusterStatus.
type ClusterWorker struct {
	// URL is the worker's base URL, as configured on the coordinator.
	URL string `json:"url"`
	// Up reports whether the coordinator currently routes to the worker.
	Up bool `json:"up"`
	// Flights counts the in-flight solves routed to this worker.
	Flights int `json:"flights"`
}

// ClusterStatus is the topology document returned by GET /v1/cluster on
// a coordinator.
type ClusterStatus struct {
	Workers []ClusterWorker `json:"workers"`
	// Flights counts distinct in-flight solves (after singleflight
	// collapsing) across all workers.
	Flights int `json:"flights"`
	// Jobs counts coordinator jobs by lifecycle state.
	Jobs map[string]int `json:"jobs"`
	// Handoffs counts checkpoint handoffs performed since start.
	Handoffs uint64 `json:"handoffs"`
}

// ClusterDrainRequest is the body of POST /v1/cluster/drain on a
// coordinator: hand the named worker's in-flight solves off to the
// surviving nodes and stop routing to it until it passes health probes
// again.
type ClusterDrainRequest struct {
	Worker string `json:"worker"`
}

// ReadyCheck is one readiness probe result inside ReadyStatus.
type ReadyCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ReadyStatus is the document returned by GET /readyz: "ready" with
// HTTP 200 when every check passes, "unready" with HTTP 503 otherwise.
type ReadyStatus struct {
	Status string       `json:"status"`
	Checks []ReadyCheck `json:"checks"`
}

// Error is the JSON error document every non-2xx response carries, plus
// the HTTP status it arrived with.
type Error struct {
	Status  int    `json:"-"`
	Message string `json:"error"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("matchd: %s (HTTP %d)", e.Message, e.Status)
}
