package matchsim

import (
	"fmt"

	"matchsim/internal/cost"
	"matchsim/internal/gen"
	"matchsim/internal/graph"
	"matchsim/internal/overset"
	"matchsim/internal/xrand"
)

// GeneratePaper creates a synthetic |Vt| = |Vr| = n problem instance per
// the paper's Section 5.2 generator: TIG node weights uniform in [1, 10],
// TIG edge weights uniform in [50, 100], resource weights uniform in
// [1, 5], link weights uniform in [10, 20], density-varying TIG edges.
// The instance is deterministic in seed.
func GeneratePaper(seed uint64, n int) (*Problem, error) {
	inst, err := gen.PaperInstance(seed, n, gen.DefaultPaperConfig())
	if err != nil {
		return nil, err
	}
	eval, err := cost.NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		return nil, err
	}
	return &Problem{eval: eval}, nil
}

// OversetConfig tunes the overset-grid CFD workload simulator — the
// domain generator for the applications the paper's introduction
// motivates (viscous-drag estimation over irregular 3-D bodies covered by
// overlapping component grids).
type OversetConfig struct {
	// NumGrids is the number of component grids (= tasks).
	NumGrids int
	// BodyRadius, GridSizeLo/Hi, SpacingLo/Hi tune the geometry; zero
	// values take defaults matched to the paper's weight scales.
	BodyRadius             float64
	GridSizeLo, GridSizeHi float64
	SpacingLo, SpacingHi   float64
}

// GenerateOverset builds a synthetic overset-grid system, converts its
// overlap structure into a TaskGraph (node weight = grid points, edge
// weight = overlap points, both scaled by 1e-3 to the paper's numeric
// range), and pairs it with a random paper-style platform of equal size.
func GenerateOverset(seed uint64, cfg OversetConfig) (*Problem, error) {
	if cfg.NumGrids < 1 {
		return nil, fmt.Errorf("matchsim: overset NumGrids %d < 1", cfg.NumGrids)
	}
	sys, err := overset.Generate(seed, overset.Config{
		NumGrids:   cfg.NumGrids,
		BodyRadius: cfg.BodyRadius,
		GridSizeLo: cfg.GridSizeLo,
		GridSizeHi: cfg.GridSizeHi,
		SpacingLo:  cfg.SpacingLo,
		SpacingHi:  cfg.SpacingHi,
	})
	if err != nil {
		return nil, err
	}
	tig, err := sys.TIG(1e-3)
	if err != nil {
		return nil, err
	}
	platform, err := gen.PaperPlatform(xrand.New(seed^0x5eed), cfg.NumGrids, gen.DefaultPaperConfig())
	if err != nil {
		return nil, err
	}
	eval, err := cost.NewEvaluator(tig, platform)
	if err != nil {
		return nil, err
	}
	return &Problem{eval: eval}, nil
}

// ClusteredPlatformConfig tunes GenerateClustered.
type ClusteredPlatformConfig struct {
	// Clusters and PerCluster define the site structure.
	Clusters, PerCluster int
	// IntraLo/Hi and InterLo/Hi bound intra-site and wide-area link
	// costs; zero values default to [1, 2] and [50, 60].
	IntraLo, IntraHi float64
	InterLo, InterHi float64
}

// GenerateClustered builds the computational-grid scenario the paper's
// introduction motivates: a paper-style TIG of size clusters*perCluster
// mapped onto a federation of homogeneous clusters joined by expensive
// wide-area links.
func GenerateClustered(seed uint64, cfg ClusteredPlatformConfig) (*Problem, error) {
	if cfg.Clusters < 1 || cfg.PerCluster < 1 {
		return nil, fmt.Errorf("matchsim: clustered shape %dx%d invalid", cfg.Clusters, cfg.PerCluster)
	}
	if cfg.IntraHi == 0 {
		cfg.IntraLo, cfg.IntraHi = 1, 2
	}
	if cfg.InterHi == 0 {
		cfg.InterLo, cfg.InterHi = 50, 60
	}
	n := cfg.Clusters * cfg.PerCluster
	rng := xrand.New(seed)
	tig, err := gen.PaperTIG(rng, n, gen.DefaultPaperConfig())
	if err != nil {
		return nil, err
	}
	prof := gen.DefaultProfile()
	prof.Clustered = true
	platform, err := gen.ClusteredPlatform(rng, cfg.Clusters, cfg.PerCluster,
		cfg.IntraLo, cfg.IntraHi, cfg.InterLo, cfg.InterHi, prof)
	if err != nil {
		return nil, err
	}
	eval, err := cost.NewEvaluator(tig, platform)
	if err != nil {
		return nil, err
	}
	return &Problem{eval: eval}, nil
}

// TaskGraphDOT renders the problem's TIG in Graphviz DOT syntax for
// visual inspection.
func (p *Problem) TaskGraphDOT() string {
	tig := p.eval.TIG()
	return graph.DOT(tig.Undirected, "tig", tig.Weights)
}

// PlatformDOT renders the problem's platform topology in DOT syntax.
func (p *Problem) PlatformDOT() string {
	rg := p.eval.Platform()
	return graph.DOT(rg.Undirected, "platform", rg.Costs)
}
