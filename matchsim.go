// Package matchsim is the public API of the MaTCH reproduction: mapping
// the interacting tasks of a data-parallel application (a Task
// Interaction Graph) onto a heterogeneous computing platform so that the
// application execution time — the makespan of eqs. (1)-(2) of the paper
// — is minimised.
//
// The primary solver is MaTCH, the Cross-Entropy heuristic of Sanyal &
// Das (IPDPS 2005); the package also exposes the paper's FastMap-GA
// baseline, a distributed agent-based MaTCH (the paper's future work),
// and a set of classic baselines (random search, greedy, local search,
// simulated annealing).
//
// Quick start:
//
//	problem, _ := matchsim.GeneratePaper(42, 20)   // synthetic instance
//	sol, _ := matchsim.SolveMaTCH(problem, matchsim.MaTCHOptions{Seed: 1})
//	fmt.Println(sol.Exec, sol.Mapping)
//
// Custom problems are built from a TaskGraph and a Platform:
//
//	tg := matchsim.NewTaskGraph([]float64{4, 2, 7})
//	tg.AddInteraction(0, 1, 55)
//	pf := matchsim.NewPlatform([]float64{1, 2, 1})
//	pf.AddLink(0, 1, 12)
//	pf.AddLink(1, 2, 15)
//	pf.AddLink(0, 2, 11)
//	problem, err := matchsim.NewProblem(tg, pf)
package matchsim

import (
	"fmt"
	"io"

	"matchsim/internal/cost"
	"matchsim/internal/graph"
)

// TaskGraph is the application model: an undirected Task Interaction
// Graph whose vertices are data-parallel tasks weighted by computational
// volume and whose edges carry communication volumes.
type TaskGraph struct {
	tig *graph.TIG
}

// NewTaskGraph creates a task graph with the given per-task computational
// weights (W^t in the paper; e.g. grid points per overset grid).
func NewTaskGraph(weights []float64) *TaskGraph {
	w := append([]float64(nil), weights...)
	return &TaskGraph{tig: graph.NewTIGWithWeights(w)}
}

// AddInteraction declares that tasks i and j exchange `volume` units of
// data per step (C^{i,j} in the paper). Each unordered pair may be
// declared once.
func (t *TaskGraph) AddInteraction(i, j int, volume float64) error {
	return t.tig.AddEdge(i, j, volume)
}

// NumTasks returns the number of tasks.
func (t *TaskGraph) NumTasks() int { return t.tig.NumTasks() }

// SetName labels the graph in experiment artefacts.
func (t *TaskGraph) SetName(name string) { t.tig.Name = name }

// Platform is the heterogeneous system model: resources weighted by
// processing cost per unit of computation, pairwise links weighted by
// communication cost per unit of data.
type Platform struct {
	rg     *graph.ResourceGraph
	closed bool
}

// NewPlatform creates a platform with the given per-resource processing
// costs (w_s in the paper; bigger = slower).
func NewPlatform(costs []float64) *Platform {
	c := append([]float64(nil), costs...)
	return &Platform{rg: graph.NewResourceGraphWithCosts(c)}
}

// AddLink declares a direct communication link between resources a and b
// with the given cost per unit of data (c_{a,b} in the paper).
func (p *Platform) AddLink(a, b int, costPerUnit float64) error {
	return p.rg.AddLink(a, b, costPerUnit)
}

// NumResources returns the number of resources.
func (p *Platform) NumResources() int { return p.rg.NumResources() }

// SetName labels the platform in experiment artefacts.
func (p *Platform) SetName(name string) { p.rg.Name = name }

// Problem binds one TaskGraph to one Platform and precomputes the cost
// model. Problems are immutable and safe for concurrent use by multiple
// solvers.
type Problem struct {
	eval *cost.Evaluator
}

// NewProblem validates the pair and builds the cost evaluator. If the
// platform topology is sparse, link costs between unconnected resources
// are closed over cheapest routes first (store-and-forward routing).
func NewProblem(t *TaskGraph, p *Platform) (*Problem, error) {
	if t == nil || p == nil {
		return nil, fmt.Errorf("matchsim: nil task graph or platform")
	}
	if !p.closed && !p.rg.FullyLinked() {
		if err := p.rg.CloseLinks(); err != nil {
			return nil, fmt.Errorf("matchsim: %w", err)
		}
		p.closed = true
	}
	eval, err := cost.NewEvaluator(t.tig, p.rg)
	if err != nil {
		return nil, err
	}
	return &Problem{eval: eval}, nil
}

// NumTasks returns |Vt|.
func (p *Problem) NumTasks() int { return p.eval.NumTasks() }

// NumResources returns |Vr|.
func (p *Problem) NumResources() int { return p.eval.NumResources() }

// Exec evaluates the application execution time of an arbitrary mapping
// (mapping[task] = resource): eqs. (1)-(2) of the paper.
func (p *Problem) Exec(mapping []int) (float64, error) {
	m := cost.Mapping(mapping)
	if len(m) != p.eval.NumTasks() {
		return 0, fmt.Errorf("matchsim: mapping length %d for %d tasks", len(m), p.eval.NumTasks())
	}
	if err := m.Validate(p.eval.NumResources()); err != nil {
		return 0, err
	}
	return p.eval.Exec(m), nil
}

// LoadBreakdown decomposes a mapping's cost per resource.
type LoadBreakdown struct {
	// Compute[s] and Comm[s] are resource s's processing and
	// communication components; Loads[s] is their sum.
	Compute, Comm, Loads []float64
	// Exec is the makespan, attained at resource Busiest.
	Exec    float64
	Busiest int
	// Imbalance is Exec over the mean load (1.0 = perfectly balanced).
	Imbalance float64
}

// Explain returns the full per-resource cost breakdown of a mapping.
func (p *Problem) Explain(mapping []int) (*LoadBreakdown, error) {
	m := cost.Mapping(mapping)
	if len(m) != p.eval.NumTasks() {
		return nil, fmt.Errorf("matchsim: mapping length %d for %d tasks", len(m), p.eval.NumTasks())
	}
	if err := m.Validate(p.eval.NumResources()); err != nil {
		return nil, err
	}
	b := p.eval.Explain(m)
	return &LoadBreakdown{
		Compute:   b.Compute,
		Comm:      b.Comm,
		Loads:     b.Loads,
		Exec:      b.Exec,
		Busiest:   b.Busiest,
		Imbalance: b.Imbalance,
	}, nil
}

// evaluator exposes the internal evaluator to the solver wrappers.
func (p *Problem) evaluator() *cost.Evaluator { return p.eval }

// WriteInstance serialises the problem's graphs as JSON for the CLIs.
func (p *Problem) WriteInstance(w io.Writer) error {
	return graph.WriteInstance(w, &graph.Instance{TIG: p.eval.TIG(), Platform: p.eval.Platform()})
}

// ReadProblem parses a JSON instance previously written by WriteInstance
// or produced by the matchgen CLI.
func ReadProblem(r io.Reader) (*Problem, error) {
	inst, err := graph.ReadInstance(r)
	if err != nil {
		return nil, err
	}
	eval, err := cost.NewEvaluator(inst.TIG, inst.Platform)
	if err != nil {
		return nil, err
	}
	return &Problem{eval: eval}, nil
}
